//! The edge/CDN serving tier (DESIGN.md §16).
//!
//! When a [`crate::FleetSpec`] carries a [`TopologySpec`], every session
//! is
//! routed to one of M edge servers; each edge runs a byte-budgeted
//! [`EdgeCache`] with byte-range-aware admission over VOXEL's
//! reliable/unreliable object split, and cache misses fan in to one
//! shared origin over a [`voxel_netem::OriginLink`] backhaul. The tier is
//! driven *by the coordinator*, not inside session cells: each cell
//! reports the objects its server resolved as [`ServeNote`]s, the
//! coordinator replays them in deterministic `(at, flow, seq)` order
//! against the caches and origin, and a cache miss shows up to the
//! session as a delayed gate on its downlink packets — so a flash crowd
//! on a cold edge degrades QoE through the existing player path, at any
//! worker count.
//!
//! [`zipf_poisson_arrivals`] generates the matching flash-crowd workload:
//! zipf-popularity video picks plus Poisson session arrivals, seeded
//! through [`voxel_sim::SimRng`] so a workload is a pure function of its
//! label.

use std::collections::VecDeque;

use voxel_core::{EdgeCache, ObjectKey, ServeNote};
use voxel_media::content::VideoId;
use voxel_netem::OriginLink;
use voxel_sim::{SimDuration, SimRng, SimTime};

use crate::spec::{video_name, Routing, TopologySpec};

/// FNV-1a over a video's legend name — the stable key consistent-hash
/// routing uses, so the mapping never depends on enum layout.
fn video_hash(video: VideoId) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in video_name(video).bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Assign each session (flow order) to an edge under the routing policy.
///
/// - [`Routing::Hash`]: consistent hash on the session's [`VideoId`] —
///   all viewers of one video share an edge.
/// - [`Routing::Robin`]: `flow % edges`, content-blind.
/// - [`Routing::Least`]: each session joins the currently least-loaded
///   edge (ties to the lowest edge id) — equivalent to round robin for
///   uniform arrivals but stable under heterogeneous member groups.
pub fn assign_edges(topology: &TopologySpec, videos: &[VideoId]) -> Vec<usize> {
    let m = topology.edges.max(1);
    match topology.routing {
        Routing::Hash => videos
            .iter()
            .map(|v| (video_hash(*v) % m as u64) as usize)
            .collect(),
        Routing::Robin => (0..videos.len()).map(|flow| flow % m).collect(),
        Routing::Least => {
            let mut loads = vec![0usize; m];
            videos
                .iter()
                .map(|_| {
                    let edge = (0..m).min_by_key(|&e| (loads[e], e)).unwrap_or(0);
                    loads[edge] += 1;
                    edge
                })
                .collect()
        }
    }
}

/// Per-edge serving statistics, frozen into the [`EdgeReport`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeStats {
    /// Sessions routed to this edge.
    pub sessions: usize,
    /// Cache hits served.
    pub hits: u64,
    /// Cache misses (each one an origin fetch).
    pub misses: u64,
    /// Objects evicted under the byte budget.
    pub evictions: u64,
    /// Total bytes served to sessions (hits + misses).
    pub bytes_served: u64,
    /// Bytes fetched from the origin on behalf of this edge.
    pub origin_bytes: u64,
    /// Cache occupancy at end of run, bytes.
    pub used_bytes: u64,
    /// Cached objects at end of run.
    pub objects: usize,
}

/// The edge tier's end-of-run report, carried on
/// [`crate::FleetResult::edge`] and compared field-for-field by the
/// sharded-parity suite.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeReport {
    /// Per-edge breakdowns, edge-id order.
    pub edges: Vec<EdgeStats>,
    /// Fleet-wide cache hits.
    pub hits: u64,
    /// Fleet-wide cache misses.
    pub misses: u64,
    /// Fleet-wide evictions.
    pub evictions: u64,
    /// Total bytes fetched over the origin backhaul.
    pub origin_bytes: u64,
    /// Total origin fetches.
    pub origin_fetches: u64,
    /// Hit ratio, percent of lookups.
    pub hit_ratio_pct: f64,
    /// Origin busy time as a percentage of the run's duration.
    pub origin_load_pct: f64,
}

impl EdgeReport {
    /// Hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        self.hit_ratio_pct / 100.0
    }
}

/// The live edge tier the coordinator drives between barrier rounds.
///
/// Determinism contract: [`EdgeTier::process_note`] must be called in
/// globally sorted `(at, flow, seq)` note order, and
/// [`EdgeTier::effective_time`] in nondecreasing `at` order per flow —
/// both are properties the coordinator's merge already guarantees for
/// packets, extended to notes. Under that ordering the tier's state is a
/// pure function of the note sequence, independent of worker count.
pub struct EdgeTier {
    caches: Vec<EdgeCache>,
    origin: OriginLink,
    assignment: Vec<usize>,
    videos: Vec<VideoId>,
    /// Per-flow `(note_at, ready)` fetch completions not yet folded into
    /// the flow's gate. A hit contributes nothing (ready = note time).
    pending: Vec<VecDeque<(SimTime, SimTime)>>,
    /// Per-flow monotone gate: no downlink packet sent at `t` may enter
    /// the shared link before `max(t, gate)` once every note at ≤ `t`
    /// has been folded in.
    gates: Vec<SimTime>,
    stats: Vec<EdgeStats>,
}

impl EdgeTier {
    /// Build the tier for `spec`'s topology over the per-session videos.
    pub fn new(topology: &TopologySpec, videos: &[VideoId]) -> EdgeTier {
        let assignment = assign_edges(topology, videos);
        let mut stats = vec![EdgeStats::default(); topology.edges];
        for &e in &assignment {
            stats[e].sessions += 1;
        }
        let cfg = topology.cache_config();
        EdgeTier {
            caches: (0..topology.edges)
                .map(|_| EdgeCache::new(cfg.clone()))
                .collect(),
            origin: OriginLink::new(topology.origin_mbps, SimDuration::from_millis(20)),
            assignment,
            videos: videos.to_vec(),
            pending: vec![VecDeque::new(); videos.len()],
            gates: vec![SimTime::ZERO; videos.len()],
            stats,
        }
    }

    /// The edge each flow is routed to.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Replay one serve note: look the object up in the flow's edge
    /// cache; on a miss, fetch the bytes over the origin backhaul and
    /// remember the completion as a pending gate for the flow.
    pub fn process_note(&mut self, at: SimTime, flow: usize, note: ServeNote) {
        let edge = self.assignment[flow];
        let key = ObjectKey {
            video: self.videos[flow],
            seg: note.seg,
            level: note.level,
            kind: note.kind,
        };
        self.stats[edge].bytes_served += note.bytes;
        if self.caches[edge].lookup(key) {
            self.stats[edge].hits += 1;
        } else {
            self.stats[edge].misses += 1;
            self.stats[edge].origin_bytes += note.bytes;
            let ready = self.origin.fetch(at, note.bytes);
            self.caches[edge].admit(key, note.bytes);
            self.pending[flow].push_back((at, ready));
        }
    }

    /// The earliest time a downlink packet emitted by `flow` at `at` may
    /// enter the shared link: folds every pending fetch whose note time
    /// is ≤ `at` into the flow's monotone gate, then returns
    /// `max(at, gate)`.
    pub fn effective_time(&mut self, flow: usize, at: SimTime) -> SimTime {
        while let Some(&(note_at, ready)) = self.pending[flow].front() {
            if note_at > at {
                break;
            }
            self.pending[flow].pop_front();
            if ready > self.gates[flow] {
                self.gates[flow] = ready;
            }
        }
        at.max(self.gates[flow])
    }

    /// Freeze the tier into its end-of-run report.
    pub fn report(&self, end_s: f64) -> EdgeReport {
        let mut edges = self.stats.clone();
        let mut hits = 0;
        let mut misses = 0;
        let mut evictions = 0;
        for (stats, cache) in edges.iter_mut().zip(&self.caches) {
            stats.evictions = cache.evictions;
            stats.used_bytes = cache.used_bytes();
            stats.objects = cache.len();
            hits += stats.hits;
            misses += stats.misses;
            evictions += stats.evictions;
        }
        let lookups = hits + misses;
        let hit_ratio_pct = if lookups == 0 {
            0.0
        } else {
            hits as f64 * 100.0 / lookups as f64
        };
        let origin_load_pct = if end_s > 0.0 {
            self.origin.busy_s() * 100.0 / end_s
        } else {
            0.0
        };
        EdgeReport {
            edges,
            hits,
            misses,
            evictions,
            origin_bytes: self.origin.total_bytes(),
            origin_fetches: self.origin.fetches(),
            hit_ratio_pct,
            origin_load_pct,
        }
    }
}

/// A generated fleet workload: per-session videos and start times, flow
/// order. Plugs into [`crate::run::run_fleet_workload`].
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// The video each session streams.
    pub videos: Vec<VideoId>,
    /// When each session starts, simulated seconds from run start.
    pub starts: Vec<SimTime>,
}

/// Zipf-popularity video picks + Poisson session arrivals — the flash
/// crowd generator. `zipf_s` is the popularity exponent (≈1 for real
/// video catalogs: rank-k popularity ∝ 1/kˢ); `arrival_rate_hz` is the
/// Poisson arrival intensity (sessions per simulated second). Seeded and
/// labelled: same `(seed, label, …)` → same workload, always.
pub fn zipf_poisson_arrivals(
    seed: u64,
    label: &str,
    sessions: usize,
    catalog: &[VideoId],
    zipf_s: f64,
    arrival_rate_hz: f64,
) -> Workload {
    let mut rng = SimRng::derive(seed, label);
    let weights: Vec<f64> = (1..=catalog.len().max(1))
        .map(|rank| 1.0 / (rank as f64).powf(zipf_s))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut videos = Vec::with_capacity(sessions);
    let mut starts = Vec::with_capacity(sessions);
    let mut clock = 0.0f64;
    for _ in 0..sessions {
        let mut pick = rng.uniform() * total;
        let mut chosen = catalog.len().saturating_sub(1);
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                chosen = i;
                break;
            }
            pick -= w;
        }
        videos.push(
            *catalog
                .get(chosen)
                .copied()
                .as_ref()
                .unwrap_or(&VideoId::Bbb),
        );
        clock += rng.exponential(arrival_rate_hz.max(1e-9));
        starts.push(SimTime::from_secs_f64(clock));
    }
    Workload { videos, starts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxel_core::ObjectKind;

    fn tier(topology: TopologySpec, videos: &[VideoId]) -> EdgeTier {
        EdgeTier::new(&topology, videos)
    }

    fn body(seg: u32, bytes: u64) -> ServeNote {
        ServeNote {
            seg,
            level: 0,
            kind: ObjectKind::Body,
            partial: false,
            bytes,
        }
    }

    #[test]
    fn routing_policies_spread_sessions() {
        let vids = [VideoId::Bbb, VideoId::Bbb, VideoId::Tos, VideoId::Ed];
        // Hash: same video, same edge — always.
        let hash = assign_edges(&TopologySpec::new(4), &vids);
        assert_eq!(hash[0], hash[1]);
        // Robin: flow order, content-blind.
        let robin = assign_edges(&TopologySpec::new(3).routing(Routing::Robin), &vids);
        assert_eq!(robin, [0, 1, 2, 0]);
        // Least: fills edges evenly in flow order.
        let least = assign_edges(&TopologySpec::new(2).routing(Routing::Least), &vids);
        assert_eq!(least, [0, 1, 0, 1]);
    }

    #[test]
    fn misses_gate_the_flow_until_origin_delivers() {
        // Two same-video flows on one edge over a slow origin.
        let vids = [VideoId::Bbb, VideoId::Bbb];
        let mut t = tier(TopologySpec::new(1).origin(8.0), &vids);
        let at = SimTime::from_secs_f64(1.0);
        // Flow 0 misses: 1 MB at 8 Mbit/s = 1 s service + 20 ms delay.
        t.process_note(at, 0, body(0, 1_000_000));
        let eff = t.effective_time(0, at);
        assert!((eff.as_secs_f64() - 2.02).abs() < 1e-6, "{eff:?}");
        // The gate is monotone: later packets inherit it.
        let later = SimTime::from_secs_f64(1.5);
        assert_eq!(t.effective_time(0, later), eff.max(later));
        // Flow 1 hits the now-warm cache: no gate.
        let at2 = SimTime::from_secs_f64(3.0);
        t.process_note(at2, 1, body(0, 1_000_000));
        assert_eq!(t.effective_time(1, at2), at2);
        let r = t.report(10.0);
        assert_eq!((r.hits, r.misses), (1, 1));
        assert_eq!(r.origin_bytes, 1_000_000);
        assert!((r.hit_ratio_pct - 50.0).abs() < 1e-9);
        assert!(r.origin_load_pct > 9.0, "{}", r.origin_load_pct);
    }

    #[test]
    fn pending_fetches_do_not_gate_earlier_packets() {
        let mut t = tier(TopologySpec::new(1).origin(1.0), &[VideoId::Bbb]);
        let miss_at = SimTime::from_secs_f64(5.0);
        t.process_note(miss_at, 0, body(0, 500_000));
        // A packet stamped before the miss is unaffected.
        let before = SimTime::from_secs_f64(4.0);
        assert_eq!(t.effective_time(0, before), before);
        // A packet at/after the miss waits for the fetch.
        assert!(t.effective_time(0, miss_at) > miss_at);
    }

    #[test]
    fn zipf_poisson_workloads_are_deterministic_and_skewed() {
        let catalog = [VideoId::Bbb, VideoId::Ed, VideoId::Sintel, VideoId::Tos];
        let a = zipf_poisson_arrivals(42, "edge", 200, &catalog, 1.2, 4.0);
        let b = zipf_poisson_arrivals(42, "edge", 200, &catalog, 1.2, 4.0);
        assert_eq!(a, b, "same seed+label must reproduce the workload");
        let c = zipf_poisson_arrivals(43, "edge", 200, &catalog, 1.2, 4.0);
        assert_ne!(a, c, "a different seed must perturb the workload");
        // Rank-1 is the plurality pick under zipf(1.2).
        let head = a.videos.iter().filter(|v| **v == catalog[0]).count();
        assert!(head > 200 / 4, "head count {head}");
        // Arrivals are strictly ordered and roughly rate-matched.
        assert!(a.starts.windows(2).all(|w| w[0] < w[1]));
        let span = a.starts.last().unwrap().as_secs_f64();
        assert!((20.0..120.0).contains(&span), "span {span}");
    }
}
