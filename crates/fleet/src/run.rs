//! The fleet event loop: N sessions, one link, one virtual clock.
//!
//! Structure mirrors the single-session loop in `voxel-core`'s `session`
//! module — pump applications, drain transmissions, keep one player tick
//! armed per session, advance to the earliest pending event — except the
//! downlink goes through a [`SharedLink`]: server packets are *enqueued*
//! (byte-level) on the shared bottleneck and their payloads held in
//! per-flow FIFO queues until the link's scheduler completes their
//! service, at which point delivery is scheduled after the propagation
//! delay. Uplink packets are delay-only, as in the single-flow path.
//!
//! Tracing: a fleet run drives one fleet-level tracer (layer `fleet`) —
//! membership, per-session summaries, the fairness digest — rather than
//! N full per-layer session timelines, keeping golden fleet digests
//! small and stable.

use crate::metrics::{jain_index, FleetResult};
use crate::spec::{system_by_name, FleetSpec};
use bytes::Bytes;
use std::collections::VecDeque;
use voxel_core::client::{ClientApp, PlayerConfig, TransportMode};
use voxel_core::server::ServerApp;
use voxel_core::{AbrKind, ContentCache, Experiment, TransportStats, TrialResult};
use voxel_media::content::VideoId;
use voxel_netem::{Discipline, SharedLink, SharedLinkConfig};
use voxel_quic::{CcKind, Connection, ConnectionConfig, Role};
use voxel_sim::{EventQueue, SimDuration, SimTime};
use voxel_trace::{trace_event, Layer, Tracer};

/// Events of the fleet loop.
enum Ev {
    /// Datagram arriving at session `flow`'s client.
    ToClient(usize, Bytes),
    /// Datagram arriving at session `flow`'s server.
    ToServer(usize, Bytes),
    /// Player tick (also the no-op clock bump).
    Tick,
    /// The shared link completes the service of its head packet.
    Service,
}

/// One session's endpoints inside the fleet.
struct Endpoint {
    label: String,
    start: SimTime,
    client_conn: Connection,
    server_conn: Connection,
    server: ServerApp,
    /// Taken on finalization.
    client: Option<ClientApp>,
    last_tick: SimTime,
    result: Option<TrialResult>,
    /// Payloads enqueued on the shared link, awaiting service completion
    /// (aligned with the link's byte-level per-flow queue).
    pending_down: VecDeque<Bytes>,
}

impl Endpoint {
    fn live(&self, now: SimTime) -> bool {
        self.start <= now && self.result.is_none()
    }
}

/// Everything a fleet run needs, resolved from a spec or an experiment.
struct Plan {
    spec: String,
    video: VideoId,
    link: SharedLinkConfig,
    buffer_segments: usize,
    selective_retx: bool,
    cc: CcKind,
    cap: SimTime,
    stagger_s: usize,
    systems: Vec<(String, AbrKind, TransportMode)>,
}

impl Plan {
    fn from_spec(spec: &FleetSpec) -> Result<Plan, String> {
        let mut systems = Vec::with_capacity(spec.total_sessions());
        for name in spec.session_systems() {
            let (abr, transport) =
                system_by_name(name).ok_or_else(|| format!("unknown system {name:?}"))?;
            systems.push((name.to_string(), abr, transport));
        }
        if systems.is_empty() {
            return Err("fleet has no sessions".to_string());
        }
        Ok(Plan {
            spec: spec.spec(),
            video: spec.video,
            link: SharedLinkConfig::new(spec.trace(), spec.queue_packets, spec.discipline),
            buffer_segments: spec.buffer_segments,
            selective_retx: true,
            cc: CcKind::Cubic,
            cap: cap_for(spec.cap_s, spec.duration_s),
            stagger_s: spec.stagger_s,
            systems,
        })
    }

    fn from_experiment(e: &Experiment) -> Plan {
        let c = e.config();
        let label = c.abr.label();
        Plan {
            spec: format!("experiment:{}x{}", e.fleet_size(), label),
            video: c.video,
            link: SharedLinkConfig::new(c.trace.clone(), c.queue_packets, Discipline::drr()),
            buffer_segments: c.buffer_segments,
            selective_retx: c.selective_retx,
            cc: c.cc,
            cap: cap_for(None, c.trace.duration_s()),
            stagger_s: 0,
            systems: vec![(label, c.abr, c.transport); e.fleet_size()],
        }
    }
}

fn cap_for(cap_s: Option<usize>, duration_s: usize) -> SimTime {
    match cap_s {
        Some(s) => SimTime::from_secs(s as u64),
        // The single-session safety cap, per member; never reached in
        // practice.
        None => SimTime::from_secs_f64(duration_s as f64 * 5.0 + 120.0),
    }
}

/// Run a fleet described by a parsed [`FleetSpec`]. Deterministic: the
/// spec alone fixes the timeline byte-for-byte.
pub fn run_fleet(
    spec: &FleetSpec,
    cache: &ContentCache,
    tracer: Tracer,
) -> Result<FleetResult, String> {
    Plan::from_spec(spec).map(|plan| run_plan(plan, cache, tracer))
}

/// Run a homogeneous fleet built from an [`Experiment`] (the builder's
/// `.fleet(n)` knob): `n` copies of the experiment's session share one
/// DRR-scheduled link carrying the experiment's trace.
pub fn run_experiment_fleet(e: &Experiment, cache: &ContentCache, tracer: Tracer) -> FleetResult {
    run_plan(Plan::from_experiment(e), cache, tracer)
}

/// Run many independent fleet specs on the work-stealing pool (untraced);
/// results come back in spec order.
pub fn run_specs(specs: &[FleetSpec], cache: &ContentCache) -> Vec<Result<FleetResult, String>> {
    let workers = voxel_sim::pool::default_workers(specs.len());
    voxel_sim::pool::run_indexed(specs.len(), workers, |i| {
        run_fleet(&specs[i], cache, Tracer::disabled())
    })
}

fn run_plan(plan: Plan, cache: &ContentCache, tracer: Tracer) -> FleetResult {
    let (manifest, video) = cache.get(plan.video);
    let qoe = cache.qoe();
    let n = plan.systems.len();
    let mut link = SharedLink::new(plan.link.clone(), n);
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let conn_config = |cc: CcKind| ConnectionConfig {
        cc,
        ..ConnectionConfig::default()
    };

    let mut endpoints: Vec<Endpoint> = Vec::with_capacity(n);
    for (i, (label, abr, transport)) in plan.systems.iter().enumerate() {
        let mut player = PlayerConfig::new(plan.buffer_segments, *transport);
        player.selective_retx = plan.selective_retx && *transport == TransportMode::Split;
        let client = ClientApp::new(
            player,
            manifest.clone(),
            video.clone(),
            qoe.clone(),
            abr.make(),
        );
        let start = SimTime::from_secs((plan.stagger_s * i) as u64);
        endpoints.push(Endpoint {
            label: label.clone(),
            start,
            client_conn: Connection::new(Role::Client, conn_config(plan.cc)),
            server_conn: Connection::new(Role::Server, conn_config(plan.cc)),
            server: ServerApp::new(manifest.clone(), true),
            client: Some(client),
            last_tick: start,
            result: None,
            pending_down: VecDeque::new(),
        });
        queue.schedule(start, Ev::Tick);
    }

    trace_event!(
        tracer,
        SimTime::ZERO,
        Layer::Fleet,
        "fleet_start",
        "sessions" = n,
        "queue_packets" = plan.link.queue_packets,
        "discipline" = plan.link.discipline.as_str(),
        "mean_mbps" = plan.link.trace.mean_mbps(),
    );
    for (i, ep) in endpoints.iter().enumerate() {
        trace_event!(
            tracer,
            ep.start,
            Layer::Fleet,
            "fleet_session_start",
            "flow" = i,
            "system" = ep.label.as_str(),
            "start_s" = ep.start.as_secs_f64(),
        );
    }

    let mut armed: Option<SimTime> = None;
    let mut iters: u64 = 0;
    let end = loop {
        let now = queue.now();
        iters += 1;
        // Profiler sampling gate: free unless a voxel-obs profiler is
        // installed on this thread; clock readings stay quarantined in the
        // profile and never reach sim state.
        voxel_obs::arm(iters);
        let _step = voxel_obs::span!("fleet.step");
        voxel_obs::observe("obs.queue_depth", queue.len() as u64);
        voxel_obs::observe("obs.link_queue", link.queue_len() as u64);

        // Application pumps, in flow order.
        let _pump = voxel_obs::span!("fleet.pump");
        for (i, ep) in endpoints.iter_mut().enumerate() {
            if !ep.live(now) {
                continue;
            }
            let _session = voxel_obs::span!("fleet.session", i);
            ep.server.handle(now, &mut ep.server_conn);
            let Some(client) = ep.client.as_mut() else {
                continue;
            };
            client.on_wake(now, &mut ep.client_conn);
            #[cfg(feature = "paranoid")]
            if let Err(e) = client.check_invariants(now) {
                if let Some(dump) = voxel_obs::dump_current(&format!(
                    "fleet member {i} invariant violated at {now:?}: {e}"
                )) {
                    eprintln!("{dump}");
                }
                // lint: allow(panic) the paranoid layer is intentionally fatal on corruption
                panic!("fleet member {i} invariant violated at {now:?}: {e}");
            }
            if client.is_done() {
                finalize(ep, i, now, &tracer);
            }
        }
        drop(_pump);
        if endpoints.iter().all(|ep| ep.result.is_some()) {
            break now;
        }

        // Drain transmissions until no endpoint has anything to send.
        let _transmit = voxel_obs::span!("fleet.transmit");
        loop {
            let mut progressed = false;
            for (i, ep) in endpoints.iter_mut().enumerate() {
                if !ep.live(now) {
                    continue;
                }
                while let Some(p) = ep.server_conn.poll_transmit(now) {
                    let size = p.wire_size();
                    if link.enqueue(now, i, size) {
                        ep.pending_down.push_back(p.encode());
                    }
                    progressed = true;
                }
                while let Some(p) = ep.client_conn.poll_transmit(now) {
                    queue.schedule(link.uplink(now), Ev::ToServer(i, p.encode()));
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        drop(_transmit);

        // Arm the link's next service completion.
        if let Some(done) = link.next_departure() {
            if armed != Some(done) {
                queue.schedule(done, Ev::Service);
                armed = Some(done);
            }
        }

        // Keep exactly one player tick armed per live session.
        for ep in endpoints.iter_mut() {
            if !ep.live(now) || ep.last_tick > now {
                continue;
            }
            if let Some(client) = ep.client.as_ref() {
                if let Some(wake) = client.next_wake(now) {
                    ep.last_tick = wake;
                    queue.schedule(wake, Ev::Tick);
                }
            }
        }

        // Next event: queue, or any live transport timer.
        let mut next = queue.peek_time();
        for ep in &endpoints {
            if ep.result.is_some() {
                continue;
            }
            for t in [ep.client_conn.next_timeout(), ep.server_conn.next_timeout()] {
                next = match (next, t) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
        }
        let Some(next) = next else {
            // Nothing pending at all: force a tick so the players can
            // re-evaluate.
            if endpoints.iter().any(|ep| ep.result.is_none()) {
                let t = queue.now() + SimDuration::from_millis(100);
                queue.schedule(t, Ev::Tick);
            }
            continue;
        };
        if next > plan.cap {
            // Safety cap (or an explicit benchmark cap): freeze the
            // stragglers where they are.
            let cap = plan.cap;
            for (i, ep) in endpoints.iter_mut().enumerate() {
                if ep.result.is_none() {
                    finalize(ep, i, cap, &tracer);
                }
            }
            break cap;
        }

        // Fire transport timers due at (or before) `next`.
        let _deliver = voxel_obs::span!("fleet.deliver");
        for ep in endpoints.iter_mut() {
            if ep.result.is_some() {
                continue;
            }
            if ep.client_conn.next_timeout().is_some_and(|t| t <= next) {
                ep.client_conn.on_timeout(next);
            }
            if ep.server_conn.next_timeout().is_some_and(|t| t <= next) {
                ep.server_conn.on_timeout(next);
            }
        }
        // Deliver everything due at `next`.
        while queue.peek_time() == Some(next) {
            let Some(ev) = queue.pop() else {
                break;
            };
            match ev.event {
                Ev::ToClient(i, d) => {
                    if endpoints[i].result.is_none() {
                        endpoints[i].client_conn.on_datagram(next, d);
                    }
                }
                Ev::ToServer(i, d) => {
                    if endpoints[i].result.is_none() {
                        endpoints[i].server_conn.on_datagram(next, d);
                    }
                }
                Ev::Tick => {}
                Ev::Service => {
                    armed = None;
                    for dep in link.pop_due(next) {
                        let ep = &mut endpoints[dep.flow];
                        if let Some(payload) = ep.pending_down.pop_front() {
                            queue.schedule(
                                dep.at + link.delay_down(),
                                Ev::ToClient(dep.flow, payload),
                            );
                        }
                    }
                }
            }
        }
        // If only timers fired (queue still in the past), bump the
        // queue's clock with a no-op event.
        if queue.now() < next {
            queue.schedule(next, Ev::Tick);
            queue.pop();
        }
    };

    // Cross-session accounting and the fairness digest.
    let flows = link.stats().to_vec();
    let delivered: Vec<f64> = flows.iter().map(|f| f.bytes_delivered as f64).collect();
    let total: f64 = delivered.iter().sum();
    let shares_pct: Vec<f64> = delivered
        .iter()
        .map(|&b| if total > 0.0 { 100.0 * b / total } else { 0.0 })
        .collect();
    let jain = jain_index(&delivered);
    let sessions: Vec<TrialResult> = endpoints.into_iter().filter_map(|ep| ep.result).collect();
    let result = FleetResult {
        spec: plan.spec,
        sessions,
        flows,
        shares_pct,
        jain,
        end_s: end.as_secs_f64(),
        loop_iters: iters,
    };
    for (i, share) in result.shares_pct.iter().enumerate() {
        tracer.observe("fleet.flow_share_pct", share.round() as u64);
        tracer.observe(
            "fleet.session_stall_ms",
            (result.sessions[i].stall_s * 1e3) as u64,
        );
    }
    tracer.count("fleet.link_drops", result.total_drops());
    trace_event!(
        tracer,
        end,
        Layer::Fleet,
        "fleet_end",
        "sessions" = result.sessions.len(),
        "jain" = result.jain,
        "mean_ssim" = result.mean_ssim(),
        "drops" = result.total_drops(),
        "delivered_bytes" = total,
    );
    tracer.flush();
    result
}

/// Close out one member: convert its player state into a [`TrialResult`]
/// with transport stats read straight off the connections (fleet runs
/// have no per-session metrics registry).
fn finalize(ep: &mut Endpoint, flow: usize, now: SimTime, tracer: &Tracer) {
    let Some(client) = ep.client.take() else {
        return;
    };
    let stats = ep.server_conn.stats();
    let client_stats = ep.client_conn.stats();
    let mut r = client.into_result(now);
    r.abr = ep.label.clone();
    r.transport = TransportStats {
        packets_sent: stats.packets_sent,
        packets_lost: stats.packets_lost,
        loss_events: stats.loss_events,
        ptos: stats.ptos,
        bytes_sent: stats.bytes_sent,
        bytes_retransmitted: stats.bytes_retransmitted,
        mean_cwnd_bytes: ep.server_conn.cwnd() as f64,
        mean_srtt_ms: ep.server_conn.srtt().as_secs_f64() * 1e3,
        client_packets_received: client_stats.packets_received,
        client_packets_duplicate: client_stats.packets_duplicate,
        client_packets_reordered: client_stats.packets_reordered,
    };
    trace_event!(
        tracer,
        now,
        Layer::Fleet,
        "fleet_session_end",
        "flow" = flow,
        "system" = ep.label.as_str(),
        "completed" = r.completed,
        "stall_s" = r.stall_s,
        "ssim" = r.avg_ssim(),
        "bytes_downloaded" = r.bytes_downloaded,
    );
    tracer.count("fleet.sessions_completed", 1);
    ep.result = Some(r);
}
