//! The sharded fleet runtime: N sessions, one link, barrier rounds.
//!
//! Pre-shard, the fleet was one global discrete-event loop that pumped
//! every session at every event — O(fleet) work per event. Now each
//! session owns a private event queue (see [`crate::shard`]) and sessions
//! interact **only** through the [`SharedLink`]: the run proceeds in
//! conservative-parallel rounds, each bounded by a barrier the coordinator
//! derives from the link's downlink propagation delay (the lookahead).
//! Within a round every session advances independently — across worker
//! threads when `workers > 1` — and the packets they offered to the link
//! are merged in the partition-invariant order `(time, flow, seq)` and
//! pumped through the link single-threaded between rounds. DESIGN.md §14
//! documents the protocol and why the barrier is a valid lookahead.
//!
//! Determinism contract, strengthened: a fleet run is a pure function of
//! its [`FleetSpec`] **and is byte-identical for every worker count** —
//! `workers` is a performance knob, never a semantic one. The tier-1
//! parity tests and the conformance harness hold every golden fleet
//! digest to that across `w ∈ {1, 2, max}`.
//!
//! Tracing: a fleet run drives one fleet-level tracer (layer `fleet`) —
//! membership, per-session summaries, the fairness digest — rather than
//! N full per-layer session timelines, keeping golden fleet digests
//! small and stable.

use crate::edge::{EdgeTier, Workload};
use crate::metrics::{jain_index, FleetResult};
use crate::shard::{worker_loop, Cmd, Delivery, FinishNote, Lane, NoteOut, Outgoing, Reply};
use crate::shard::{RoundCmd, SessionCell, SessionSeed};
use crate::spec::{resolve_workers, system_by_name, FleetSpec, TopologySpec};
use bytes::Bytes;
use std::collections::VecDeque;
use voxel_core::client::{PlayerConfig, TransportMode};
use voxel_core::{AbrKind, ContentCache, Experiment, TrialResult};
use voxel_media::content::VideoId;
use voxel_netem::{BandwidthTrace, Departure, Discipline, SharedLink, SharedLinkConfig};
use voxel_quic::{CcKind, ConnectionConfig};
use voxel_sim::pool::VecPool;
use voxel_sim::SimTime;
use voxel_trace::{trace_event, Layer, Tracer};

/// Everything a fleet run needs, resolved from a spec or an experiment.
/// Videos and start times are per-session (flow order): the spec path
/// seeds them uniformly (one video, `stagger_s * i` starts) and a
/// [`Workload`] overrides both — which is how the zipf/Poisson flash
/// crowd reaches the runtime.
struct Plan {
    spec: String,
    videos: Vec<VideoId>,
    starts: Vec<SimTime>,
    link: SharedLinkConfig,
    buffer_segments: usize,
    selective_retx: bool,
    cap: SimTime,
    topology: Option<TopologySpec>,
    workers: Option<usize>,
    systems: Vec<(String, AbrKind, TransportMode, CcKind)>,
}

/// The one assembly point both construction paths go through, so spec
/// runs and builder (`Experiment`) runs cannot drift on how a knob — the
/// scheduling discipline in particular — reaches the link.
#[allow(clippy::too_many_arguments)]
struct PlanParams {
    spec: String,
    video: VideoId,
    trace: BandwidthTrace,
    queue_packets: usize,
    discipline: Discipline,
    buffer_segments: usize,
    selective_retx: bool,
    cap_s: Option<usize>,
    duration_s: usize,
    stagger_s: usize,
    topology: Option<TopologySpec>,
    workers: Option<usize>,
    systems: Vec<(String, AbrKind, TransportMode, CcKind)>,
}

impl Plan {
    fn assemble(p: PlanParams) -> Plan {
        let n = p.systems.len();
        Plan {
            spec: p.spec,
            videos: vec![p.video; n],
            starts: (0..n)
                .map(|i| SimTime::from_secs((p.stagger_s * i) as u64))
                .collect(),
            link: SharedLinkConfig::new(p.trace, p.queue_packets, p.discipline),
            buffer_segments: p.buffer_segments,
            selective_retx: p.selective_retx,
            cap: cap_for(p.cap_s, p.duration_s),
            topology: p.topology,
            workers: p.workers,
            systems: p.systems,
        }
    }

    fn from_spec(spec: &FleetSpec) -> Result<Plan, String> {
        let mut systems = Vec::with_capacity(spec.total_sessions());
        for m in spec.session_members() {
            let (abr, transport) = system_by_name(&m.system)
                .ok_or_else(|| format!("unknown system {:?}", m.system))?;
            systems.push((m.label(), abr, transport, m.cc_kind()));
        }
        if systems.is_empty() {
            return Err("fleet has no sessions".to_string());
        }
        Ok(Plan::assemble(PlanParams {
            spec: spec.spec(),
            video: spec.video,
            trace: spec.trace(),
            queue_packets: spec.queue_packets,
            discipline: spec.discipline,
            buffer_segments: spec.buffer_segments,
            selective_retx: true,
            cap_s: spec.cap_s,
            duration_s: spec.duration_s,
            stagger_s: spec.stagger_s,
            topology: spec.edge.clone(),
            workers: spec.workers,
            systems,
        }))
    }

    fn from_experiment(e: &Experiment) -> Plan {
        let c = e.config();
        let label = c.abr.label();
        Plan::assemble(PlanParams {
            spec: format!(
                "experiment:{}x{}:{}",
                e.fleet_size(),
                label,
                c.discipline.as_str()
            ),
            video: c.video,
            trace: c.trace.clone(),
            queue_packets: c.queue_packets,
            discipline: c.discipline,
            buffer_segments: c.buffer_segments,
            selective_retx: c.selective_retx,
            cap_s: None,
            duration_s: c.trace.duration_s(),
            stagger_s: 0,
            topology: None,
            workers: c.workers,
            systems: vec![(label, c.abr, c.transport, c.cc); e.fleet_size()],
        })
    }
}

fn cap_for(cap_s: Option<usize>, duration_s: usize) -> SimTime {
    match cap_s {
        Some(s) => SimTime::from_secs(s as u64),
        // The single-session safety cap, per member; never reached in
        // practice.
        None => SimTime::from_secs_f64(duration_s as f64 * 5.0 + 120.0),
    }
}

/// Run a fleet described by a parsed [`FleetSpec`]. Deterministic: the
/// spec alone fixes the timeline byte-for-byte, at any worker count.
pub fn run_fleet(
    spec: &FleetSpec,
    cache: &ContentCache,
    tracer: Tracer,
) -> Result<FleetResult, String> {
    Plan::from_spec(spec).map(|plan| run_plan(plan, cache, tracer))
}

/// Run a fleet under a generated [`Workload`]: the spec fixes the
/// members, link, and topology; the workload overrides each session's
/// video and start time (zipf popularity + Poisson arrivals from
/// [`crate::edge::zipf_poisson_arrivals`], or anything else flow-sized).
pub fn run_fleet_workload(
    spec: &FleetSpec,
    workload: &Workload,
    cache: &ContentCache,
    tracer: Tracer,
) -> Result<FleetResult, String> {
    let mut plan = Plan::from_spec(spec)?;
    let n = plan.systems.len();
    if workload.videos.len() != n || workload.starts.len() != n {
        return Err(format!(
            "workload sized {}v/{}s for a fleet of {n}",
            workload.videos.len(),
            workload.starts.len(),
        ));
    }
    plan.videos = workload.videos.clone();
    plan.starts = workload.starts.clone();
    Ok(run_plan(plan, cache, tracer))
}

/// Run a homogeneous fleet built from an [`Experiment`] (the builder's
/// `.fleet(n)` knob): `n` copies of the experiment's session share one
/// link, scheduled by the experiment's discipline, carrying the
/// experiment's trace.
pub fn run_experiment_fleet(e: &Experiment, cache: &ContentCache, tracer: Tracer) -> FleetResult {
    run_plan(Plan::from_experiment(e), cache, tracer)
}

/// Run many independent fleet specs on the work-stealing pool (untraced);
/// results come back in spec order.
pub fn run_specs(specs: &[FleetSpec], cache: &ContentCache) -> Vec<Result<FleetResult, String>> {
    let workers = voxel_sim::pool::default_workers(specs.len());
    voxel_sim::pool::run_indexed(specs.len(), workers, |i| {
        run_fleet(&specs[i], cache, Tracer::disabled())
    })
}

/// Contiguous shard sizes for `n` sessions over `workers` lanes: the
/// first `n % workers` lanes take one extra session.
fn chunk_sizes(n: usize, workers: usize) -> Vec<usize> {
    let base = n / workers;
    (0..workers)
        .map(|j| base + usize::from(j < n % workers))
        .filter(|&s| s > 0)
        .collect()
}

fn run_plan(plan: Plan, cache: &ContentCache, tracer: Tracer) -> FleetResult {
    let qoe = cache.qoe();
    let n = plan.systems.len();
    let workers = resolve_workers(plan.workers, n);

    let mut seeds: Vec<SessionSeed> = Vec::with_capacity(n);
    for (i, (label, abr, transport, cc)) in plan.systems.iter().enumerate() {
        let (manifest, video) = cache.get(plan.videos[i]);
        let mut player = PlayerConfig::new(plan.buffer_segments, *transport);
        player.selective_retx = plan.selective_retx && *transport == TransportMode::Split;
        seeds.push(SessionSeed {
            flow: i,
            label: label.clone(),
            start: plan.starts[i],
            delay_up: plan.link.delay_up,
            player,
            conn_config: ConnectionConfig {
                cc: *cc,
                ..ConnectionConfig::default()
            },
            manifest,
            video,
            qoe: qoe.clone(),
            abr: *abr,
            record_notes: plan.topology.is_some(),
        });
    }

    trace_event!(
        tracer,
        SimTime::ZERO,
        Layer::Fleet,
        "fleet_start",
        "sessions" = n,
        "queue_packets" = plan.link.queue_packets,
        "discipline" = plan.link.discipline.as_str(),
        "mean_mbps" = plan.link.trace.mean_mbps(),
    );
    for seed in &seeds {
        trace_event!(
            tracer,
            seed.start,
            Layer::Fleet,
            "fleet_session_start",
            "flow" = seed.flow,
            "system" = seed.label.as_str(),
            "start_s" = seed.start.as_secs_f64(),
        );
    }

    let link = SharedLink::new(plan.link.clone(), n);
    if workers <= 1 {
        // Single lane on the calling thread: no threads are spawned at
        // all, and the coordinator + shard code is exactly the code the
        // threaded path runs.
        let sessions: Vec<SessionCell> = seeds.into_iter().map(SessionCell::new).collect();
        let sizes = [n];
        let mut lanes = vec![Lane::Inline {
            sessions,
            pending: None,
        }];
        coordinate(&plan, link, &mut lanes, &sizes, &tracer)
    } else {
        // Workers construct and own their sessions (live session state
        // never crosses a thread); the coordinator's flight recorder, if
        // one is installed, is cloned onto every worker so paranoid
        // audits inside a shard reach the same ring.
        let recorder = voxel_obs::current_recorder();
        let sizes = chunk_sizes(n, workers);
        std::thread::scope(|scope| {
            let mut lanes: Vec<Lane> = Vec::with_capacity(sizes.len());
            let mut rest = seeds;
            for &size in &sizes {
                let tail = rest.split_off(size);
                let chunk = std::mem::replace(&mut rest, tail);
                let (cmd_tx, cmd_rx) = std::sync::mpsc::channel();
                let (reply_tx, reply_rx) = std::sync::mpsc::channel();
                let rec = recorder.clone();
                scope.spawn(move || worker_loop(chunk, cmd_rx, reply_tx, rec));
                lanes.push(Lane::Thread {
                    tx: cmd_tx,
                    rx: reply_rx,
                });
            }
            coordinate(&plan, link, &mut lanes, &sizes, &tracer)
        })
    }
}

/// The barrier-round loop: compute the next barrier, fan the round out to
/// every lane, merge the outboxes in `(time, flow, seq)` order, pump the
/// shared link, and route its deliveries back out. Single-threaded; all
/// cross-session state (the link, payload FIFOs, delivery routing) lives
/// here and only here.
fn coordinate(
    plan: &Plan,
    mut link: SharedLink,
    lanes: &mut [Lane],
    sizes: &[usize],
    tracer: &Tracer,
) -> FleetResult {
    let n: usize = sizes.iter().sum();
    let delay_down = link.delay_down();
    let cap = plan.cap;
    // Lane j owns the contiguous flow range [lane_lo[j], lane_lo[j] + sizes[j]).
    let lane_lo: Vec<usize> = sizes
        .iter()
        .scan(0, |lo, s| {
            let here = *lo;
            *lo += s;
            Some(here)
        })
        .collect();
    let lane_of = |flow: usize| match lane_lo.binary_search(&flow) {
        Ok(j) => j,
        Err(j) => j - 1,
    };

    // Earliest pending work per live session (None = finished). Seeded
    // with the start times; refreshed from every round's blocked reports.
    let mut next_by_flow: Vec<Option<SimTime>> = plan.starts.iter().map(|s| Some(*s)).collect();
    // The edge tier, when the plan has one. `None` leaves the packet path
    // untouched — byte-identical to the classic single-server fleet.
    let mut edge: Option<EdgeTier> = plan
        .topology
        .as_ref()
        .map(|t| EdgeTier::new(t, &plan.videos));
    // Round-scratch: serve notes reported by shards, replayed against the
    // tier in (at, flow, seq) order.
    let mut notes: Vec<NoteOut> = Vec::new();
    // Packets gated past the current barrier by a pending origin fetch:
    // (effective link-entry time, packet), re-staged every round.
    let mut held: Vec<(SimTime, Outgoing)> = Vec::new();
    // Payloads enqueued on the shared link, awaiting service completion
    // (aligned with the link's byte-level per-flow queues).
    let mut pending_down: Vec<VecDeque<Bytes>> = vec![VecDeque::new(); n];
    // Link deliveries produced by the previous round's pump, routed to
    // their owners at the top of the next round.
    let mut deliveries: Vec<Delivery> = Vec::new();
    let mut has_delivery: Vec<bool> = vec![false; n];
    let mut per_lane: Vec<Vec<Delivery>> = (0..lanes.len()).map(|_| Vec::new()).collect();
    // Round-scratch buffers, reused across the (many) rounds.
    let mut merged: Vec<Outgoing> = Vec::new();
    let mut finished: Vec<FinishNote> = Vec::new();
    let mut dep_pool: VecPool<Departure> = VecPool::new();

    let mut live = n;
    let mut iters: u64 = 0;
    let mut rounds: u64 = 0;
    let mut prev = SimTime::ZERO;
    let mut end = SimTime::ZERO;

    while live > 0 {
        rounds += 1;
        // Profiler sampling gate: free unless a voxel-obs profiler is
        // installed on this thread; clock readings stay quarantined in the
        // profile and never reach sim state.
        voxel_obs::arm(rounds);
        let _step = voxel_obs::span!("fleet.step");
        voxel_obs::observe("obs.shard_live", live as u64);
        voxel_obs::observe("obs.link_queue", link.queue_len() as u64);

        // Earliest actionable instant anywhere: a session's reported next
        // event, an un-routed delivery, or the link's next completion
        // (plus propagation). Everything here is partition-invariant.
        let mut global_next: Option<SimTime> = None;
        let mut fold = |t: SimTime| {
            global_next = Some(global_next.map_or(t, |g: SimTime| g.min(t)));
        };
        for t in next_by_flow.iter().flatten() {
            fold(*t);
        }
        for d in &deliveries {
            fold(d.at);
        }
        for (eff, _) in &held {
            fold(*eff);
        }
        if let Some(dep) = link.next_departure() {
            fold(dep + delay_down);
        }
        let Some(global_next) = global_next else {
            // Unreachable while sessions are live (a live session always
            // reports a next time), but harmless: nothing can ever happen.
            break;
        };

        if global_next > cap {
            // Safety cap (or an explicit benchmark cap): nothing left in
            // (prev, cap], so freeze the stragglers where they are. A
            // global decision — only the coordinator can know no earlier
            // event exists on any shard.
            for lane in lanes.iter_mut() {
                lane.dispatch(Cmd::Freeze(cap));
            }
            finished.clear();
            for lane in lanes.iter_mut() {
                if let Reply::Round(mut r) = lane.collect() {
                    finished.append(&mut r.finished);
                }
            }
            finished.sort_by_key(|f| f.flow);
            for f in &finished {
                emit_session_end(tracer, f);
            }
            end = cap;
            break;
        }

        // The barrier: at least one lookahead quantum past the previous
        // barrier, fast-forwarded over globally-idle gaps, clamped to the
        // cap so no session simulates time the run will never keep.
        let barrier = (prev + delay_down).max(global_next).min(cap);

        // Route the previous round's link deliveries to their owners,
        // in link-departure order (partition-invariant).
        {
            let _deliver = voxel_obs::span!("fleet.deliver");
            for d in deliveries.drain(..) {
                has_delivery[d.flow] = true;
                per_lane[lane_of(d.flow)].push(d);
            }
        }

        // Fan the round out. A session is skipped — no wake-up at all —
        // when it has no deliveries and its next event is past the
        // barrier; the skip predicate reads only partition-invariant
        // state, so every worker count skips identically.
        {
            let _pump = voxel_obs::span!("fleet.pump");
            for (j, lane) in lanes.iter_mut().enumerate() {
                let lo = lane_lo[j];
                let skip: Vec<bool> = (lo..lo + sizes[j])
                    .map(|f| !has_delivery[f] && next_by_flow[f].is_none_or(|t| t > barrier))
                    .collect();
                lane.dispatch(Cmd::Round(RoundCmd {
                    barrier,
                    deliveries: std::mem::take(&mut per_lane[j]),
                    skip,
                }));
            }
            for flag in has_delivery.iter_mut() {
                *flag = false;
            }

            // Collect in lane order (the inline lane executes here; thread
            // lanes have been working since dispatch).
            merged.clear();
            finished.clear();
            for lane in lanes.iter_mut() {
                match lane.collect() {
                    Reply::Round(mut r) => {
                        iters += r.iters;
                        merged.append(&mut r.outbox);
                        notes.append(&mut r.notes);
                        for (flow, t) in r.blocked {
                            next_by_flow[flow] = Some(t);
                        }
                        for note in r.finished.drain(..) {
                            next_by_flow[note.flow] = None;
                            finished.push(note);
                        }
                    }
                    Reply::Outcomes(_) => unreachable!("harvest reply during a round"),
                }
            }
        }

        live -= finished.len();
        finished.sort_by_key(|f| (f.at, f.flow));
        for f in &finished {
            end = end.max(f.at);
            emit_session_end(tracer, f);
        }

        // Merge the round's packets in partition-invariant order and pump
        // the link: pop completions due before each arrival (occupancy at
        // enqueue time is exact), then drain through the barrier.
        {
            let _transmit = voxel_obs::span!("fleet.transmit");
            voxel_obs::observe("obs.shard_outbox", merged.len() as u64);
            merged.sort_by_key(|o| (o.at, o.flow, o.seq));
            let mut departures = dep_pool.acquire();
            if let Some(tier) = edge.as_mut() {
                // Edge path: replay the round's serve notes in the same
                // partition-invariant order as packets, stamp every packet
                // with its effective link-entry time (the flow's origin
                // gate), and stage. A packet gated past the barrier is
                // held for a later round — its gate time is already folded
                // into the next `global_next`.
                notes.sort_by_key(|no| (no.at, no.flow, no.seq));
                for no in notes.drain(..) {
                    tier.process_note(no.at, no.flow, no.note);
                }
                let mut staged: Vec<(SimTime, Outgoing)> = std::mem::take(&mut held);
                for o in merged.drain(..) {
                    let eff = tier.effective_time(o.flow, o.at);
                    staged.push((eff, o));
                }
                staged.sort_by_key(|(eff, o)| (*eff, o.flow, o.seq));
                for (eff, o) in staged {
                    if eff > barrier {
                        held.push((eff, o));
                        continue;
                    }
                    link.pop_due_into(eff, &mut departures);
                    if link.enqueue(eff, o.flow, o.bytes) {
                        pending_down[o.flow].push_back(o.payload);
                    }
                }
            } else {
                for o in merged.drain(..) {
                    link.pop_due_into(o.at, &mut departures);
                    if link.enqueue(o.at, o.flow, o.bytes) {
                        pending_down[o.flow].push_back(o.payload);
                    }
                }
            }
            link.pop_due_into(barrier, &mut departures);
            for dep in departures.drain(..) {
                if let Some(payload) = pending_down[dep.flow].pop_front() {
                    deliveries.push(Delivery {
                        flow: dep.flow,
                        at: dep.at + delay_down,
                        payload,
                    });
                }
            }
            dep_pool.release(departures);
        }
        prev = barrier;
    }

    // Harvest per-session results, reassembled in flow order.
    for lane in lanes.iter_mut() {
        lane.dispatch(Cmd::Harvest);
    }
    let mut slots: Vec<Option<TrialResult>> = (0..n).map(|_| None).collect();
    for lane in lanes.iter_mut() {
        match lane.collect() {
            Reply::Outcomes(outs) => {
                for (flow, r) in outs {
                    slots[flow] = Some(r);
                }
            }
            Reply::Round(_) => unreachable!("round reply during harvest"),
        }
    }
    let sessions: Vec<TrialResult> = slots
        .into_iter()
        // lint: allow(panic) every flow was frozen or finished above
        .map(|s| s.expect("session produced a result"))
        .collect();

    // Cross-session accounting and the fairness digest.
    let flows = link.stats().to_vec();
    let delivered: Vec<f64> = flows.iter().map(|f| f.bytes_delivered as f64).collect();
    let total: f64 = delivered.iter().sum();
    let shares_pct: Vec<f64> = delivered
        .iter()
        .map(|&b| if total > 0.0 { 100.0 * b / total } else { 0.0 })
        .collect();
    let jain = jain_index(&delivered);
    let edge_report = edge.as_ref().map(|t| t.report(end.as_secs_f64()));
    if let Some(report) = &edge_report {
        tracer.count("edge.hit", report.hits);
        tracer.count("edge.miss", report.misses);
        tracer.count("edge.evict", report.evictions);
        tracer.count("edge.origin_bytes", report.origin_bytes);
        tracer.observe("edge.hit_ratio_pct", report.hit_ratio_pct.round() as u64);
        tracer.observe(
            "edge.origin_load_pct",
            report.origin_load_pct.round() as u64,
        );
        for (i, e) in report.edges.iter().enumerate() {
            trace_event!(
                tracer,
                end,
                Layer::Edge,
                "edge_state",
                "edge" = i,
                "sessions" = e.sessions,
                "hits" = e.hits,
                "misses" = e.misses,
                "evictions" = e.evictions,
                "bytes_served" = e.bytes_served,
                "origin_bytes" = e.origin_bytes,
                "used_bytes" = e.used_bytes,
                "objects" = e.objects,
            );
        }
    }
    let result = FleetResult {
        spec: plan.spec.clone(),
        sessions,
        flows,
        shares_pct,
        jain,
        end_s: end.as_secs_f64(),
        loop_iters: iters,
        edge: edge_report,
    };
    for (i, share) in result.shares_pct.iter().enumerate() {
        tracer.observe("fleet.flow_share_pct", share.round() as u64);
        tracer.observe(
            "fleet.session_stall_ms",
            (result.sessions[i].stall_s * 1e3) as u64,
        );
    }
    tracer.count("fleet.link_drops", result.total_drops());
    trace_event!(
        tracer,
        end,
        Layer::Fleet,
        "fleet_end",
        "sessions" = result.sessions.len(),
        "jain" = result.jain,
        "mean_ssim" = result.mean_ssim(),
        "drops" = result.total_drops(),
        "delivered_bytes" = total,
    );
    tracer.flush();
    result
}

/// Emit the `fleet_session_end` trace record for one finished member.
fn emit_session_end(tracer: &Tracer, f: &FinishNote) {
    trace_event!(
        tracer,
        f.at,
        Layer::Fleet,
        "fleet_session_end",
        "flow" = f.flow,
        "system" = f.system.as_str(),
        "completed" = f.completed,
        "stall_s" = f.stall_s,
        "ssim" = f.ssim,
        "bytes_downloaded" = f.bytes_downloaded,
    );
    tracer.count("fleet.sessions_completed", 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxel_core::Experiment;
    use voxel_netem::Discipline;

    #[test]
    fn chunk_sizes_cover_everything_contiguously() {
        for n in 1..20 {
            for w in 1..=n {
                let sizes = chunk_sizes(n, w);
                assert_eq!(sizes.iter().sum::<usize>(), n, "n={n} w={w}");
                assert_eq!(sizes.len(), w.min(n));
                assert!(sizes.iter().all(|&s| s > 0));
                // Balanced within one session.
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1);
            }
        }
    }

    /// Regression (discipline alignment): both plan construction paths
    /// flow through `Plan::assemble`, so the experiment path honours the
    /// configured discipline instead of hard-coding DRR.
    #[test]
    fn experiment_plan_honours_configured_discipline() {
        let fifo = Experiment::builder()
            .fleet(2)
            .discipline(Discipline::Fifo)
            .build();
        let plan = Plan::from_experiment(&fifo);
        assert_eq!(plan.link.discipline, Discipline::Fifo);
        assert!(plan.spec.ends_with(":fifo"), "spec = {}", plan.spec);

        let default = Experiment::builder().fleet(2).build();
        let plan = Plan::from_experiment(&default);
        assert_eq!(plan.link.discipline, Discipline::drr());
        assert!(plan.spec.ends_with(":drr"), "spec = {}", plan.spec);
    }

    /// Regression: the spec path likewise takes its discipline from the
    /// parsed spec, through the same constructor.
    #[test]
    fn spec_plan_honours_parsed_discipline() {
        let spec = FleetSpec::parse("BBB:2xVOXEL:const6:buf3:q64:d60:fifo").unwrap();
        let plan = Plan::from_spec(&spec).unwrap();
        assert_eq!(plan.link.discipline, Discipline::Fifo);
    }

    /// The spec's per-member `@cc` reaches the plan per session, in flow
    /// order, with suffix-free members defaulting to CUBIC.
    #[test]
    fn spec_plan_threads_cc_per_session() {
        let spec = FleetSpec::parse("BBB:2xVOXEL@bbr+1xVOXEL:const6:buf3:q64:d60:fifo").unwrap();
        let plan = Plan::from_spec(&spec).unwrap();
        let ccs: Vec<CcKind> = plan.systems.iter().map(|s| s.3).collect();
        assert_eq!(ccs, [CcKind::Bbr, CcKind::Bbr, CcKind::Cubic]);
        let labels: Vec<&str> = plan.systems.iter().map(|s| s.0.as_str()).collect();
        assert_eq!(labels, ["VOXEL@bbr", "VOXEL@bbr", "VOXEL"]);
    }

    /// The builder path replicates the experiment's cc across the fleet.
    #[test]
    fn experiment_plan_carries_cc() {
        let e = Experiment::builder().fleet(2).cc(CcKind::Delay).build();
        let plan = Plan::from_experiment(&e);
        assert!(plan.systems.iter().all(|s| s.3 == CcKind::Delay));
    }

    #[test]
    fn experiment_plan_carries_workers_knob() {
        let e = Experiment::builder().fleet(4).workers(2).build();
        let plan = Plan::from_experiment(&e);
        assert_eq!(plan.workers, Some(2));
        assert_eq!(resolve_workers(plan.workers, 4), 2);
    }
}
