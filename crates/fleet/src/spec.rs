//! Fleet specs: a compact, round-trippable grammar for multi-session
//! experiments, in the style of the testkit's scenario specs.
//!
//! Canonical form:
//!
//! ```text
//! <video>:<count>x<system>[@<cc>][+<count>x<system>[@<cc>]…]:const<mbps>:buf<N>:q<N>:d<N>:<fifo|drr>:stg<N>[:cap<N>][:w<N>]
//! ```
//!
//! e.g. `BBB:4xVOXEL+2xBOLA+2xBETA:const6:buf3:q64:d300:drr:stg2` — an
//! 8-session mixed-ABR fleet on a shared constant 6 Mbit/s link, 3-segment
//! buffers, a 64-packet shared queue, DRR scheduling, session starts
//! staggered 2 s apart. [`FleetSpec::spec`] is the exact inverse of
//! [`FleetSpec::parse`].
//!
//! The optional `@<cc>` member suffix picks the group's congestion
//! controller (`cubic` | `delay` | `bbr`), so heterogeneous-cc contention
//! fleets are one spec line: `BBB:4xVOXEL@bbr+4xVOXEL@cubic:const6:...`.
//! Omitted means CUBIC (the workspace default), and the canonical form
//! preserves exactly what was written — `VOXEL` and `VOXEL@cubic` run
//! identically but round-trip as themselves.
//!
//! The optional `w<N>` token pins the sharded runtime's worker count
//! (`w1` = the single-threaded coordinator). When absent, the
//! `VOXEL_SHARD_WORKERS` environment variable decides (`max` = available
//! parallelism), defaulting to 1 — the timeline is byte-identical at any
//! worker count either way, so `w` is a performance knob, never a
//! semantic one.
//!
//! This module also owns the canonical system/video name tables
//! ([`system_by_name`], [`video_by_name`]) that `voxel-testkit` re-exports,
//! so scenario specs and fleet specs can never disagree on what `VOXEL`
//! means.

use voxel_core::client::TransportMode;
use voxel_core::AbrKind;
use voxel_media::content::VideoId;
use voxel_netem::{BandwidthTrace, Discipline};
use voxel_quic::CcKind;

/// Resolve a system legend name to its ABR + transport.
pub fn system_by_name(system: &str) -> Option<(AbrKind, TransportMode)> {
    Some(match system {
        "BOLA" => (AbrKind::Bola, TransportMode::Reliable),
        "BOLA-SSIM" => (AbrKind::BolaSsim, TransportMode::Split),
        "MPC" => (AbrKind::Mpc, TransportMode::Reliable),
        "MPC*" => (AbrKind::MpcStar, TransportMode::Split),
        "Tput" => (AbrKind::Tput, TransportMode::Reliable),
        "BETA" => (AbrKind::Beta, TransportMode::Reliable),
        "VOXEL" => (AbrKind::voxel(), TransportMode::Split),
        "VOXEL-tuned" => (AbrKind::voxel_tuned(), TransportMode::Split),
        "VOXEL-rel" => (AbrKind::voxel(), TransportMode::Reliable),
        _ => return None,
    })
}

/// Resolve a video legend name (`BBB`/`ED`/`Sintel`/`ToS`/`P1`..`P10`).
pub fn video_by_name(name: &str) -> Option<VideoId> {
    match name {
        "BBB" => Some(VideoId::Bbb),
        "ED" => Some(VideoId::Ed),
        "Sintel" => Some(VideoId::Sintel),
        "ToS" => Some(VideoId::Tos),
        p => {
            let n: u8 = p.strip_prefix('P')?.parse().ok()?;
            (1..=10).contains(&n).then_some(VideoId::YouTube(n))
        }
    }
}

/// The legend name of a video (inverse of [`video_by_name`]).
pub fn video_name(id: VideoId) -> String {
    match id {
        VideoId::Bbb => "BBB".into(),
        VideoId::Ed => "ED".into(),
        VideoId::Sintel => "Sintel".into(),
        VideoId::Tos => "ToS".into(),
        VideoId::YouTube(n) => format!("P{n}"),
    }
}

/// One homogeneous group of fleet members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetMember {
    /// Number of sessions in the group.
    pub count: usize,
    /// System legend name (validated against [`system_by_name`]).
    pub system: String,
    /// Congestion controller from the `@<cc>` suffix; `None` (no suffix)
    /// runs the workspace default, CUBIC.
    pub cc: Option<CcKind>,
}

impl FleetMember {
    /// The controller this group actually runs.
    pub fn cc_kind(&self) -> CcKind {
        self.cc.unwrap_or(CcKind::Cubic)
    }

    /// The member's display label: the system name, plus the `@<cc>`
    /// suffix when one was spelled out (`VOXEL@bbr`). Used as the
    /// per-session system label in fleet traces and reports.
    pub fn label(&self) -> String {
        match self.cc {
            Some(cc) => format!("{}@{}", self.system, cc.name()),
            None => self.system.clone(),
        }
    }
}

/// A fully-specified fleet experiment. See the module docs for the
/// grammar; [`FleetSpec::default`] carries the workspace defaults
/// (`buf3:q64:d300:drr:stg0`).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// The video every session streams.
    pub video: VideoId,
    /// Member groups, in spec order. Session (= flow) ids number the
    /// expanded list: `4xVOXEL+2xBOLA` gives flows 0–3 VOXEL, 4–5 BOLA.
    pub members: Vec<FleetMember>,
    /// Shared link rate, Mbit/s (constant trace).
    pub link_mbps: f64,
    /// Trace duration, seconds.
    pub duration_s: usize,
    /// Per-session playback buffer capacity, segments.
    pub buffer_segments: usize,
    /// Shared droptail queue length, packets.
    pub queue_packets: usize,
    /// Link scheduling discipline.
    pub discipline: Discipline,
    /// Session `i` starts at `i * stagger_s` seconds (symmetry breaking).
    pub stagger_s: usize,
    /// Optional hard cap on simulated seconds (benchmark slices); `None`
    /// uses the session safety cap.
    pub cap_s: Option<usize>,
    /// Explicit shard worker count (`w<N>`); `None` defers to the
    /// `VOXEL_SHARD_WORKERS` environment variable via [`resolve_workers`].
    pub workers: Option<usize>,
}

impl Default for FleetSpec {
    fn default() -> FleetSpec {
        FleetSpec {
            video: VideoId::Bbb,
            members: vec![FleetMember {
                count: 2,
                system: "VOXEL".into(),
                cc: None,
            }],
            link_mbps: 6.0,
            duration_s: 300,
            buffer_segments: 3,
            queue_packets: 64,
            discipline: Discipline::drr(),
            stagger_s: 0,
            cap_s: None,
            workers: None,
        }
    }
}

/// Resolve a fleet's shard worker count: the spec's explicit `w<N>` token
/// when present, otherwise the `VOXEL_SHARD_WORKERS` environment variable
/// (`max` = available parallelism, or a number), otherwise 1. Always
/// clamped to `[1, sessions]`.
pub fn resolve_workers(explicit: Option<usize>, sessions: usize) -> usize {
    let requested =
        explicit.unwrap_or_else(
            || match std::env::var("VOXEL_SHARD_WORKERS").ok().as_deref() {
                Some("max") => std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1),
                Some(v) => v.parse().unwrap_or(1),
                None => 1,
            },
        );
    requested.clamp(1, sessions.max(1))
}

impl FleetSpec {
    /// Parse a spec string. Exact inverse of [`FleetSpec::spec`].
    pub fn parse(spec: &str) -> Result<FleetSpec, String> {
        let mut parts = spec.split(':');
        let video_tok = parts.next().filter(|t| !t.is_empty()).ok_or("empty spec")?;
        let video =
            video_by_name(video_tok).ok_or_else(|| format!("unknown video {video_tok:?}"))?;
        let members_tok = parts.next().ok_or("missing members (<count>x<system>+…)")?;
        let mut members = Vec::new();
        for group in members_tok.split('+') {
            let (count, system) = group
                .split_once('x')
                .ok_or_else(|| format!("member group {group:?} needs <count>x<system>"))?;
            let count: usize = count
                .parse()
                .map_err(|_| format!("bad member count in {group:?}"))?;
            if count == 0 {
                return Err(format!("member group {group:?} has zero sessions"));
            }
            let (system, cc) = match system.split_once('@') {
                Some((sys, cc_tok)) => {
                    let cc = CcKind::by_name(cc_tok).ok_or_else(|| {
                        format!("unknown cc {cc_tok:?} in {group:?} (expected cubic|delay|bbr)")
                    })?;
                    (sys, Some(cc))
                }
                None => (system, None),
            };
            if system_by_name(system).is_none() {
                return Err(format!("unknown system {system:?}"));
            }
            members.push(FleetMember {
                count,
                system: system.to_string(),
                cc,
            });
        }
        let trace_tok = parts.next().ok_or("missing trace (const<mbps>)")?;
        let link_mbps: f64 = trace_tok
            .strip_prefix("const")
            .ok_or_else(|| format!("fleet traces are const<mbps>, got {trace_tok:?}"))?
            .parse()
            .map_err(|_| format!("bad rate in {trace_tok:?}"))?;

        let mut out = FleetSpec {
            video,
            members,
            link_mbps,
            ..FleetSpec::default()
        };
        for tok in parts {
            // Literal discipline tokens first: `drr` must not be eaten by
            // the `d<duration>` prefix.
            if tok == "fifo" {
                out.discipline = Discipline::Fifo;
            } else if tok == "drr" {
                out.discipline = Discipline::drr();
            } else if let Some(v) = tok.strip_prefix("buf") {
                out.buffer_segments = v.parse().map_err(|_| format!("bad buf in {tok:?}"))?;
            } else if let Some(v) = tok.strip_prefix("q") {
                out.queue_packets = v.parse().map_err(|_| format!("bad queue in {tok:?}"))?;
            } else if let Some(v) = tok.strip_prefix("d") {
                out.duration_s = v.parse().map_err(|_| format!("bad duration in {tok:?}"))?;
            } else if let Some(v) = tok.strip_prefix("stg") {
                out.stagger_s = v.parse().map_err(|_| format!("bad stagger in {tok:?}"))?;
            } else if let Some(v) = tok.strip_prefix("cap") {
                out.cap_s = Some(v.parse().map_err(|_| format!("bad cap in {tok:?}"))?);
            } else if let Some(v) = tok.strip_prefix("w") {
                let w: usize = v.parse().map_err(|_| format!("bad workers in {tok:?}"))?;
                if w == 0 {
                    return Err(format!("workers must be at least 1 in {tok:?}"));
                }
                out.workers = Some(w);
            } else {
                return Err(format!("unknown fleet spec token {tok:?}"));
            }
        }
        Ok(out)
    }

    /// The canonical spec string (exact inverse of [`FleetSpec::parse`]).
    pub fn spec(&self) -> String {
        let members: Vec<String> = self
            .members
            .iter()
            .map(|m| format!("{}x{}", m.count, m.label()))
            .collect();
        let mut s = format!(
            "{}:{}:const{}:buf{}:q{}:d{}:{}:stg{}",
            video_name(self.video),
            members.join("+"),
            self.link_mbps,
            self.buffer_segments,
            self.queue_packets,
            self.duration_s,
            self.discipline.as_str(),
            self.stagger_s,
        );
        if let Some(cap) = self.cap_s {
            s.push_str(&format!(":cap{cap}"));
        }
        if let Some(w) = self.workers {
            s.push_str(&format!(":w{w}"));
        }
        s
    }

    /// Total session count (expanded members).
    pub fn total_sessions(&self) -> usize {
        self.members.iter().map(|m| m.count).sum()
    }

    /// Expanded per-session system names, in flow-id order.
    pub fn session_systems(&self) -> Vec<&str> {
        let mut out = Vec::with_capacity(self.total_sessions());
        for m in &self.members {
            for _ in 0..m.count {
                out.push(m.system.as_str());
            }
        }
        out
    }

    /// Expanded per-session member configs (the group each flow belongs
    /// to), in flow-id order — what the runtime needs to seed a session:
    /// system name, label, and congestion controller.
    pub fn session_members(&self) -> Vec<&FleetMember> {
        let mut out = Vec::with_capacity(self.total_sessions());
        for m in &self.members {
            for _ in 0..m.count {
                out.push(m);
            }
        }
        out
    }

    /// Whether every session runs the same system *and* the same
    /// congestion controller: `8xVOXEL@bbr` is homogeneous,
    /// `4xVOXEL@bbr+4xVOXEL@cubic` is a contention mix (and is held to
    /// the relaxed mixed-cc fairness band, not the homogeneous one).
    pub fn homogeneous(&self) -> bool {
        self.members
            .iter()
            .all(|m| m.system == self.members[0].system && m.cc_kind() == self.members[0].cc_kind())
    }

    /// The distinct congestion controllers in the fleet, in member order.
    pub fn cc_mix(&self) -> Vec<CcKind> {
        let mut out: Vec<CcKind> = Vec::new();
        for m in &self.members {
            if !out.contains(&m.cc_kind()) {
                out.push(m.cc_kind());
            }
        }
        out
    }

    /// The shared link's bandwidth trace.
    pub fn trace(&self) -> BandwidthTrace {
        BandwidthTrace::constant(self.link_mbps, self.duration_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_parse() {
        let spec = "BBB:4xVOXEL+2xBOLA+2xBETA:const6:buf3:q64:d300:drr:stg2";
        let s = FleetSpec::parse(spec).expect("parses");
        assert_eq!(s.spec(), spec);
        assert_eq!(FleetSpec::parse(&s.spec()).expect("re-parses"), s);
        assert_eq!(s.total_sessions(), 8);
        assert!(!s.homogeneous());

        let capped = "ToS:8xVOXEL:const12.5:buf1:q32:d120:fifo:stg0:cap60";
        let c = FleetSpec::parse(capped).expect("parses");
        assert_eq!(c.spec(), capped);
        assert_eq!(c.cap_s, Some(60));
        assert_eq!(c.discipline, Discipline::Fifo);
        assert!(c.homogeneous());

        let sharded = "BBB:8xVOXEL:const6:buf3:q64:d300:drr:stg2:cap60:w4";
        let w = FleetSpec::parse(sharded).expect("parses");
        assert_eq!(w.spec(), sharded);
        assert_eq!(w.workers, Some(4));
    }

    #[test]
    fn workers_token_parses_and_resolves() {
        // Canonical specs without a `w` token stay canonical (no `:w`).
        let s = FleetSpec::parse("BBB:2xVOXEL:const6").expect("parses");
        assert_eq!(s.workers, None);
        assert!(!s.spec().contains(":w"));
        // An explicit token wins over the environment and clamps to the
        // session count.
        assert_eq!(resolve_workers(Some(4), 8), 4);
        assert_eq!(resolve_workers(Some(64), 8), 8);
        assert_eq!(resolve_workers(Some(1), 8), 1);
        for bad in ["BBB:2xVOXEL:const6:w0", "BBB:2xVOXEL:const6:wx"] {
            assert!(FleetSpec::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "BBB",
            "BBB:2xVOXEL",
            "NOPE:2xVOXEL:const6",
            "BBB:2xWAT:const6",
            "BBB:0xVOXEL:const6",
            "BBB:VOXEL:const6",
            "BBB:2xVOXEL:tmobile",
            "BBB:2xVOXEL:const6:wat9",
            "BBB:2xVOXEL@:const6",
            "BBB:2xWAT@bbr:const6",
        ] {
            assert!(FleetSpec::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn cc_knob_round_trips_through_parse() {
        // Explicit suffixes survive verbatim — including a spelled-out
        // `@cubic`, which runs identically to no suffix but is its own
        // canonical form.
        for spec in [
            "BBB:8xVOXEL@bbr:const6:buf3:q64:d300:drr:stg2",
            "BBB:4xVOXEL@bbr+4xVOXEL@cubic:const6:buf3:q64:d300:fifo:stg2",
            "BBB:3xVOXEL@cubic+3xVOXEL@delay+2xVOXEL@bbr:const6:buf3:q64:d300:fifo:stg1",
            "BBB:2xBOLA@delay+2xVOXEL:const6:buf3:q64:d300:drr:stg0",
        ] {
            let s = FleetSpec::parse(spec).expect("parses");
            assert_eq!(s.spec(), spec, "canonical form drifted");
            assert_eq!(FleetSpec::parse(&s.spec()).expect("re-parses"), s);
        }
        let s = FleetSpec::parse("BBB:4xVOXEL@bbr+4xVOXEL@cubic:const6").expect("parses");
        assert_eq!(s.members[0].cc, Some(CcKind::Bbr));
        assert_eq!(s.members[1].cc, Some(CcKind::Cubic));
        assert_eq!(
            s.session_members()
                .iter()
                .map(|m| m.label())
                .collect::<Vec<_>>()[3..5],
            ["VOXEL@bbr".to_string(), "VOXEL@cubic".to_string()]
        );
        // No suffix means CUBIC but stays suffix-free in canonical form.
        let plain = FleetSpec::parse("BBB:2xVOXEL:const6").expect("parses");
        assert_eq!(plain.members[0].cc, None);
        assert_eq!(plain.members[0].cc_kind(), CcKind::Cubic);
        assert!(!plain.spec().contains('@'));
    }

    #[test]
    fn cc_knob_mix_and_homogeneity() {
        let homo = FleetSpec::parse("BBB:8xVOXEL@bbr:const6").expect("parses");
        assert!(homo.homogeneous());
        assert_eq!(homo.cc_mix(), [CcKind::Bbr]);
        // Same ABR, different cc: a contention mix, not homogeneous.
        let mix = FleetSpec::parse("BBB:4xVOXEL@bbr+4xVOXEL@cubic:const6").expect("parses");
        assert!(!mix.homogeneous());
        assert_eq!(mix.cc_mix(), [CcKind::Bbr, CcKind::Cubic]);
        // An explicit @cubic and no suffix are the same effective cc.
        let same = FleetSpec::parse("BBB:4xVOXEL@cubic+4xVOXEL:const6").expect("parses");
        assert!(same.homogeneous());
        assert_eq!(same.cc_mix(), [CcKind::Cubic]);
    }

    #[test]
    fn unknown_cc_error_names_the_token_and_choices() {
        let err = FleetSpec::parse("BBB:2xVOXEL@reno:const6").expect_err("rejects");
        assert!(err.contains("\"reno\""), "error was {err:?}");
        assert!(err.contains("cubic|delay|bbr"), "error was {err:?}");
    }

    #[test]
    fn cc_knob_composes_with_workers_token() {
        let s = FleetSpec::parse("BBB:4xVOXEL@bbr+4xVOXEL@cubic:const6:buf3:q64:d300:fifo:stg2:w4")
            .expect("parses");
        assert_eq!(s.workers, Some(4));
        assert_eq!(s.members[0].cc, Some(CcKind::Bbr));
        assert_eq!(
            s.spec(),
            "BBB:4xVOXEL@bbr+4xVOXEL@cubic:const6:buf3:q64:d300:fifo:stg2:w4"
        );
        assert_eq!(resolve_workers(s.workers, s.total_sessions()), 4);
        // And the `w` clamp still applies with cc groups in play.
        assert_eq!(resolve_workers(Some(64), s.total_sessions()), 8);
    }

    #[test]
    fn session_systems_expand_in_flow_order() {
        let s = FleetSpec::parse("BBB:2xVOXEL+1xBOLA:const6").expect("parses");
        assert_eq!(s.session_systems(), ["VOXEL", "VOXEL", "BOLA"]);
        // Un-specified knobs take the documented defaults.
        assert_eq!(s.buffer_segments, 3);
        assert_eq!(s.queue_packets, 64);
        assert_eq!(s.duration_s, 300);
        assert_eq!(s.stagger_s, 0);
        assert_eq!(s.discipline, Discipline::drr());
    }

    #[test]
    fn name_tables_cover_the_legend() {
        for sys in [
            "BOLA",
            "BOLA-SSIM",
            "MPC",
            "MPC*",
            "Tput",
            "BETA",
            "VOXEL",
            "VOXEL-tuned",
            "VOXEL-rel",
        ] {
            assert!(system_by_name(sys).is_some(), "missing {sys}");
        }
        for (name, id) in [
            ("BBB", VideoId::Bbb),
            ("ToS", VideoId::Tos),
            ("P3", VideoId::YouTube(3)),
        ] {
            assert_eq!(video_by_name(name), Some(id));
            assert_eq!(video_name(id), name);
        }
    }
}
