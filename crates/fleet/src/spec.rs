//! Typed fleet specs: [`FleetSpec`] + [`TopologySpec`] are the primary
//! surface for describing multi-session experiments — builder methods for
//! members, congestion control, the shared link, scheduling discipline,
//! workers, and (since the edge tier landed) edges, routing, and the
//! origin backhaul. The compact string grammar is a *serialization* of
//! that typed surface: [`FleetSpec`] implements [`std::str::FromStr`] and
//! [`std::fmt::Display`], and the two are exact inverses (a property the
//! test suite pins with a parse↔display round-trip proptest).
//!
//! ```
//! use voxel_fleet::{FleetSpec, TopologySpec, Routing};
//! use voxel_media::content::VideoId;
//!
//! let spec = FleetSpec::new(VideoId::Bbb)
//!     .member(4, "VOXEL")
//!     .member(2, "BOLA")
//!     .link(6.0)
//!     .stagger(2)
//!     .topology(TopologySpec::new(4).routing(Routing::Hash).origin(50.0));
//! let s = spec.to_string();
//! assert_eq!(s.parse::<FleetSpec>().unwrap(), spec);
//! ```
//!
//! Canonical string form:
//!
//! ```text
//! <video>:<count>x<system>[@<cc>][+…]:const<mbps>:buf<N>:q<N>:d<N>:<fifo|drr>:stg<N>
//!     [:cap<N>][:e<M>:r<hash|robin|least>:a<full|rel|none>:p<lru|lfu>[:cb<MB>]:o<mbps>][:w<N>]
//! ```
//!
//! e.g. `BBB:4xVOXEL+2xBOLA+2xBETA:const6:buf3:q64:d300:drr:stg2` — an
//! 8-session mixed-ABR fleet on a shared constant 6 Mbit/s link. The
//! optional `@<cc>` member suffix picks the group's congestion controller
//! (`cubic` | `delay` | `bbr`); omitted means CUBIC, and the canonical
//! form preserves exactly what was written. The optional `w<N>` token
//! pins the sharded runtime's worker count (a performance knob, never a
//! semantic one). The edge-tier token group starts with `e<M>` (edge
//! server count) and configures request routing (`r`), cache admission
//! (`a`), eviction policy (`p`), the per-edge cache byte budget in MB
//! (`cb`, omitted = unbounded), and the origin backhaul rate (`o`) — see
//! DESIGN.md §16.
//!
//! Parse errors are structured ([`SpecError`]): the offending token, its
//! colon-separated position, and the expected set — not ad-hoc strings.
//!
//! This module also owns the canonical system/video name tables
//! ([`system_by_name`], [`video_by_name`]) that `voxel-testkit` re-exports,
//! so scenario specs and fleet specs can never disagree on what `VOXEL`
//! means.

use std::fmt;
use voxel_core::client::TransportMode;
use voxel_core::{AbrKind, Admission, CacheConfig, EvictionPolicy};
use voxel_media::content::VideoId;
use voxel_netem::{BandwidthTrace, Discipline};
use voxel_quic::CcKind;

/// Resolve a system legend name to its ABR + transport.
pub fn system_by_name(system: &str) -> Option<(AbrKind, TransportMode)> {
    Some(match system {
        "BOLA" => (AbrKind::Bola, TransportMode::Reliable),
        "BOLA-SSIM" => (AbrKind::BolaSsim, TransportMode::Split),
        "MPC" => (AbrKind::Mpc, TransportMode::Reliable),
        "MPC*" => (AbrKind::MpcStar, TransportMode::Split),
        "Tput" => (AbrKind::Tput, TransportMode::Reliable),
        "BETA" => (AbrKind::Beta, TransportMode::Reliable),
        "VOXEL" => (AbrKind::voxel(), TransportMode::Split),
        "VOXEL-tuned" => (AbrKind::voxel_tuned(), TransportMode::Split),
        "VOXEL-rel" => (AbrKind::voxel(), TransportMode::Reliable),
        _ => return None,
    })
}

/// Resolve a video legend name (`BBB`/`ED`/`Sintel`/`ToS`/`P1`..`P10`).
pub fn video_by_name(name: &str) -> Option<VideoId> {
    match name {
        "BBB" => Some(VideoId::Bbb),
        "ED" => Some(VideoId::Ed),
        "Sintel" => Some(VideoId::Sintel),
        "ToS" => Some(VideoId::Tos),
        p => {
            let n: u8 = p.strip_prefix('P')?.parse().ok()?;
            (1..=10).contains(&n).then_some(VideoId::YouTube(n))
        }
    }
}

/// The legend name of a video (inverse of [`video_by_name`]).
pub fn video_name(id: VideoId) -> String {
    match id {
        VideoId::Bbb => "BBB".into(),
        VideoId::Ed => "ED".into(),
        VideoId::Sintel => "Sintel".into(),
        VideoId::Tos => "ToS".into(),
        VideoId::YouTube(n) => format!("P{n}"),
    }
}

/// A structured fleet-spec parse error: the offending token, its
/// colon-separated position in the spec string, and the set of inputs
/// that would have been accepted there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The token (or token fragment) that failed to parse.
    pub token: String,
    /// Colon-separated token index the error occurred at.
    pub pos: usize,
    /// What would have been valid in its place.
    pub expected: String,
}

impl SpecError {
    fn new(token: impl Into<String>, pos: usize, expected: impl Into<String>) -> SpecError {
        SpecError {
            token: token.into(),
            pos,
            expected: expected.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fleet spec: bad token {:?} at position {}: expected {}",
            self.token, self.pos, self.expected
        )
    }
}

impl std::error::Error for SpecError {}

/// How sessions are routed to edge servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Routing {
    /// Consistent hash on the session's [`VideoId`] — all viewers of one
    /// video land on the same edge, maximizing overlap.
    #[default]
    Hash,
    /// Round robin by flow id, ignoring content.
    Robin,
    /// Least-loaded: each session joins the edge with the fewest
    /// sessions assigned so far (ties to the lowest edge id).
    Least,
}

impl Routing {
    /// Stable spec-grammar name (`hash` | `robin` | `least`).
    pub fn as_str(self) -> &'static str {
        match self {
            Routing::Hash => "hash",
            Routing::Robin => "robin",
            Routing::Least => "least",
        }
    }

    /// Inverse of [`Routing::as_str`].
    pub fn by_name(name: &str) -> Option<Routing> {
        Some(match name {
            "hash" => Routing::Hash,
            "robin" => Routing::Robin,
            "least" => Routing::Least,
            _ => return None,
        })
    }
}

/// The edge serving tier of a fleet (DESIGN.md §16): `edges` edge servers
/// in front of one shared origin, a routing policy assigning sessions to
/// edges, and a per-edge byte-budgeted cache with byte-range-aware
/// admission. Constructed with builder methods:
///
/// ```
/// use voxel_fleet::{Routing, TopologySpec};
/// use voxel_core::{Admission, EvictionPolicy};
///
/// let t = TopologySpec::new(4)
///     .routing(Routing::Robin)
///     .admission(Admission::ReliablePrefix)
///     .eviction(EvictionPolicy::Lfu)
///     .cache_mb(64.0)
///     .origin(50.0);
/// assert_eq!(t.edges, 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    /// Number of edge servers.
    pub edges: usize,
    /// Session → edge routing policy.
    pub routing: Routing,
    /// Cache admission mode over VOXEL's reliable/unreliable ranges.
    pub admission: Admission,
    /// Cache eviction policy under the byte budget.
    pub eviction: EvictionPolicy,
    /// Per-edge cache byte budget in MB; `None` is unbounded.
    pub cache_mb: Option<f64>,
    /// Origin backhaul rate, Mbit/s (every edge's misses share it).
    pub origin_mbps: f64,
}

impl Default for TopologySpec {
    fn default() -> TopologySpec {
        TopologySpec::new(1)
    }
}

impl TopologySpec {
    /// An edge tier of `edges` servers with the workspace defaults:
    /// consistent-hash routing, full admission, LRU eviction, an
    /// unbounded cache, and a 100 Mbit/s origin backhaul.
    pub fn new(edges: usize) -> TopologySpec {
        TopologySpec {
            edges: edges.max(1),
            routing: Routing::Hash,
            admission: Admission::Full,
            eviction: EvictionPolicy::Lru,
            cache_mb: None,
            origin_mbps: 100.0,
        }
    }

    /// Set the session → edge routing policy.
    pub fn routing(mut self, routing: Routing) -> TopologySpec {
        self.routing = routing;
        self
    }

    /// Set the cache admission mode.
    pub fn admission(mut self, admission: Admission) -> TopologySpec {
        self.admission = admission;
        self
    }

    /// Set the cache eviction policy.
    pub fn eviction(mut self, eviction: EvictionPolicy) -> TopologySpec {
        self.eviction = eviction;
        self
    }

    /// Set the per-edge cache byte budget, in MB.
    pub fn cache_mb(mut self, mb: f64) -> TopologySpec {
        self.cache_mb = Some(mb);
        self
    }

    /// Set the origin backhaul rate, Mbit/s.
    pub fn origin(mut self, mbps: f64) -> TopologySpec {
        self.origin_mbps = mbps;
        self
    }

    /// The byte budget, in bytes.
    pub fn cache_budget_bytes(&self) -> Option<u64> {
        self.cache_mb.map(|mb| (mb * (1 << 20) as f64) as u64)
    }

    /// The per-edge [`CacheConfig`] this topology implies.
    pub fn cache_config(&self) -> CacheConfig {
        CacheConfig {
            levels: None,
            byte_budget: self.cache_budget_bytes(),
            eviction: self.eviction,
            admission: self.admission,
        }
    }
}

/// One homogeneous group of fleet members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetMember {
    /// Number of sessions in the group.
    pub count: usize,
    /// System legend name (validated against [`system_by_name`]).
    pub system: String,
    /// Congestion controller from the `@<cc>` suffix; `None` (no suffix)
    /// runs the workspace default, CUBIC.
    pub cc: Option<CcKind>,
}

impl FleetMember {
    /// The controller this group actually runs.
    pub fn cc_kind(&self) -> CcKind {
        self.cc.unwrap_or(CcKind::Cubic)
    }

    /// The member's display label: the system name, plus the `@<cc>`
    /// suffix when one was spelled out (`VOXEL@bbr`). Used as the
    /// per-session system label in fleet traces and reports.
    pub fn label(&self) -> String {
        match self.cc {
            Some(cc) => format!("{}@{}", self.system, cc.name()),
            None => self.system.clone(),
        }
    }
}

/// A fully-specified fleet experiment. See the module docs for the
/// grammar; [`FleetSpec::default`] carries the workspace defaults
/// (`buf3:q64:d300:drr:stg0`, no edge tier).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// The video every session streams.
    pub video: VideoId,
    /// Member groups, in spec order. Session (= flow) ids number the
    /// expanded list: `4xVOXEL+2xBOLA` gives flows 0–3 VOXEL, 4–5 BOLA.
    pub members: Vec<FleetMember>,
    /// Shared link rate, Mbit/s (constant trace).
    pub link_mbps: f64,
    /// Trace duration, seconds.
    pub duration_s: usize,
    /// Per-session playback buffer capacity, segments.
    pub buffer_segments: usize,
    /// Shared droptail queue length, packets.
    pub queue_packets: usize,
    /// Link scheduling discipline.
    pub discipline: Discipline,
    /// Session `i` starts at `i * stagger_s` seconds (symmetry breaking).
    pub stagger_s: usize,
    /// Optional hard cap on simulated seconds (benchmark slices); `None`
    /// uses the session safety cap.
    pub cap_s: Option<usize>,
    /// The edge serving tier; `None` is the classic single-server fleet.
    pub edge: Option<TopologySpec>,
    /// Explicit shard worker count (`w<N>`); `None` defers to the
    /// `VOXEL_SHARD_WORKERS` environment variable via [`resolve_workers`].
    pub workers: Option<usize>,
}

impl Default for FleetSpec {
    fn default() -> FleetSpec {
        FleetSpec {
            video: VideoId::Bbb,
            members: vec![FleetMember {
                count: 2,
                system: "VOXEL".into(),
                cc: None,
            }],
            link_mbps: 6.0,
            duration_s: 300,
            buffer_segments: 3,
            queue_packets: 64,
            discipline: Discipline::drr(),
            stagger_s: 0,
            cap_s: None,
            edge: None,
            workers: None,
        }
    }
}

/// Resolve a fleet's shard worker count: the spec's explicit `w<N>` token
/// when present, otherwise the `VOXEL_SHARD_WORKERS` environment variable
/// (`max` = available parallelism, or a number), otherwise 1. Always
/// clamped to `[1, sessions]`.
pub fn resolve_workers(explicit: Option<usize>, sessions: usize) -> usize {
    let requested =
        explicit.unwrap_or_else(
            || match std::env::var("VOXEL_SHARD_WORKERS").ok().as_deref() {
                Some("max") => std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1),
                Some(v) => v.parse().unwrap_or(1),
                None => 1,
            },
        );
    requested.clamp(1, sessions.max(1))
}

impl FleetSpec {
    /// A builder seed: `video`, no members yet, the workspace defaults
    /// everywhere else. Chain [`FleetSpec::member`] and friends.
    pub fn new(video: VideoId) -> FleetSpec {
        FleetSpec {
            video,
            members: Vec::new(),
            ..FleetSpec::default()
        }
    }

    /// Append a member group of `count` sessions running `system`
    /// (default congestion controller).
    pub fn member(mut self, count: usize, system: &str) -> FleetSpec {
        self.members.push(FleetMember {
            count,
            system: system.to_string(),
            cc: None,
        });
        self
    }

    /// Append a member group with an explicit congestion controller.
    pub fn member_cc(mut self, count: usize, system: &str, cc: CcKind) -> FleetSpec {
        self.members.push(FleetMember {
            count,
            system: system.to_string(),
            cc: Some(cc),
        });
        self
    }

    /// Set the shared link rate, Mbit/s.
    pub fn link(mut self, mbps: f64) -> FleetSpec {
        self.link_mbps = mbps;
        self
    }

    /// Set the trace duration, seconds.
    pub fn duration(mut self, s: usize) -> FleetSpec {
        self.duration_s = s;
        self
    }

    /// Set the per-session playback buffer, segments.
    pub fn buffer(mut self, segments: usize) -> FleetSpec {
        self.buffer_segments = segments;
        self
    }

    /// Set the shared droptail queue length, packets.
    pub fn queue(mut self, packets: usize) -> FleetSpec {
        self.queue_packets = packets;
        self
    }

    /// Set the link scheduling discipline.
    pub fn discipline(mut self, discipline: Discipline) -> FleetSpec {
        self.discipline = discipline;
        self
    }

    /// Set the session start stagger, seconds.
    pub fn stagger(mut self, s: usize) -> FleetSpec {
        self.stagger_s = s;
        self
    }

    /// Cap the simulated horizon, seconds.
    pub fn cap(mut self, s: usize) -> FleetSpec {
        self.cap_s = Some(s);
        self
    }

    /// Pin the sharded runtime's worker count.
    pub fn workers(mut self, w: usize) -> FleetSpec {
        self.workers = Some(w);
        self
    }

    /// Install an edge serving tier.
    pub fn topology(mut self, t: TopologySpec) -> FleetSpec {
        self.edge = Some(t);
        self
    }

    /// Parse a spec string. Exact inverse of [`FleetSpec::spec`].
    pub fn parse(spec: &str) -> Result<FleetSpec, SpecError> {
        let parts: Vec<&str> = spec.split(':').collect();
        let video_tok = *parts.first().unwrap_or(&"");
        if video_tok.is_empty() {
            return Err(SpecError::new(
                spec,
                0,
                "a video legend name (BBB|ED|Sintel|ToS|P1..P10)",
            ));
        }
        let video = video_by_name(video_tok).ok_or_else(|| {
            SpecError::new(
                video_tok,
                0,
                "a video legend name (BBB|ED|Sintel|ToS|P1..P10)",
            )
        })?;
        let members_tok = *parts.get(1).ok_or_else(|| {
            SpecError::new(spec, 1, "a member list (<count>x<system>[@<cc>][+…])")
        })?;
        let mut members = Vec::new();
        for group in members_tok.split('+') {
            let (count, system) = group.split_once('x').ok_or_else(|| {
                SpecError::new(group, 1, "a member group of the form <count>x<system>")
            })?;
            let count: usize = count
                .parse()
                .map_err(|_| SpecError::new(group, 1, "a positive member count before 'x'"))?;
            if count == 0 {
                return Err(SpecError::new(group, 1, "a member count of at least 1"));
            }
            let (system, cc) = match system.split_once('@') {
                Some((sys, cc_tok)) => {
                    let cc = CcKind::by_name(cc_tok)
                        .ok_or_else(|| SpecError::new(cc_tok, 1, "a cc in cubic|delay|bbr"))?;
                    (sys, Some(cc))
                }
                None => (system, None),
            };
            if system_by_name(system).is_none() {
                return Err(SpecError::new(system, 1, "a system legend name"));
            }
            members.push(FleetMember {
                count,
                system: system.to_string(),
                cc,
            });
        }
        let trace_tok = *parts
            .get(2)
            .ok_or_else(|| SpecError::new(spec, 2, "a link trace (const<mbps>)"))?;
        let link_mbps: f64 = trace_tok
            .strip_prefix("const")
            .ok_or_else(|| SpecError::new(trace_tok, 2, "a link trace (const<mbps>)"))?
            .parse()
            .map_err(|_| SpecError::new(trace_tok, 2, "a rate in const<mbps>"))?;

        let mut out = FleetSpec {
            video,
            members,
            link_mbps,
            ..FleetSpec::default()
        };
        for (pos, tok) in parts.iter().enumerate().skip(3) {
            let tok = *tok;
            // Helper: edge-group tokens require the `e<M>` token first.
            macro_rules! edge_mut {
                () => {
                    match out.edge.as_mut() {
                        Some(e) => e,
                        None => {
                            return Err(SpecError::new(
                                tok,
                                pos,
                                "e<edges> before any r/a/p/cb/o edge token",
                            ))
                        }
                    }
                };
            }
            // Literal discipline tokens first: `drr` must not be eaten by
            // the `d<duration>` prefix.
            if tok == "fifo" {
                out.discipline = Discipline::Fifo;
            } else if tok == "drr" {
                out.discipline = Discipline::drr();
            } else if let Some(v) = tok.strip_prefix("buf") {
                out.buffer_segments = v
                    .parse()
                    .map_err(|_| SpecError::new(tok, pos, "a segment count in buf<N>"))?;
            } else if let Some(v) = tok.strip_prefix("q") {
                out.queue_packets = v
                    .parse()
                    .map_err(|_| SpecError::new(tok, pos, "a packet count in q<N>"))?;
            } else if let Some(v) = tok.strip_prefix("stg") {
                out.stagger_s = v
                    .parse()
                    .map_err(|_| SpecError::new(tok, pos, "seconds in stg<N>"))?;
            } else if let Some(v) = tok.strip_prefix("cb") {
                let mb: f64 = v
                    .parse()
                    .map_err(|_| SpecError::new(tok, pos, "a cache budget in cb<MB>"))?;
                edge_mut!().cache_mb = Some(mb);
            } else if let Some(v) = tok.strip_prefix("cap") {
                out.cap_s = Some(
                    v.parse()
                        .map_err(|_| SpecError::new(tok, pos, "seconds in cap<N>"))?,
                );
            } else if let Some(v) = tok.strip_prefix("d") {
                out.duration_s = v
                    .parse()
                    .map_err(|_| SpecError::new(tok, pos, "seconds in d<N>"))?;
            } else if let Some(v) = tok.strip_prefix("e") {
                let edges: usize = v
                    .parse()
                    .map_err(|_| SpecError::new(tok, pos, "an edge count in e<M>"))?;
                if edges == 0 {
                    return Err(SpecError::new(tok, pos, "an edge count of at least 1"));
                }
                out.edge = Some(TopologySpec::new(edges));
            } else if let Some(v) = tok.strip_prefix("r") {
                let routing = Routing::by_name(v)
                    .ok_or_else(|| SpecError::new(tok, pos, "a routing in r<hash|robin|least>"))?;
                edge_mut!().routing = routing;
            } else if let Some(v) = tok.strip_prefix("a") {
                let admission = Admission::by_name(v)
                    .ok_or_else(|| SpecError::new(tok, pos, "an admission in a<full|rel|none>"))?;
                edge_mut!().admission = admission;
            } else if let Some(v) = tok.strip_prefix("p") {
                let eviction = EvictionPolicy::by_name(v)
                    .ok_or_else(|| SpecError::new(tok, pos, "an eviction in p<lru|lfu>"))?;
                edge_mut!().eviction = eviction;
            } else if let Some(v) = tok.strip_prefix("o") {
                let mbps: f64 = v
                    .parse()
                    .map_err(|_| SpecError::new(tok, pos, "a rate in o<mbps>"))?;
                edge_mut!().origin_mbps = mbps;
            } else if let Some(v) = tok.strip_prefix("w") {
                let w: usize = v
                    .parse()
                    .map_err(|_| SpecError::new(tok, pos, "a worker count in w<N>"))?;
                if w == 0 {
                    return Err(SpecError::new(tok, pos, "a worker count of at least 1"));
                }
                out.workers = Some(w);
            } else {
                return Err(SpecError::new(
                    tok,
                    pos,
                    "one of fifo|drr|buf<N>|q<N>|d<N>|stg<N>|cap<N>|e<M>|r<policy>|a<mode>|p<policy>|cb<MB>|o<mbps>|w<N>",
                ));
            }
        }
        Ok(out)
    }

    /// The canonical spec string (exact inverse of [`FleetSpec::parse`]).
    pub fn spec(&self) -> String {
        let members: Vec<String> = self
            .members
            .iter()
            .map(|m| format!("{}x{}", m.count, m.label()))
            .collect();
        let mut s = format!(
            "{}:{}:const{}:buf{}:q{}:d{}:{}:stg{}",
            video_name(self.video),
            members.join("+"),
            self.link_mbps,
            self.buffer_segments,
            self.queue_packets,
            self.duration_s,
            self.discipline.as_str(),
            self.stagger_s,
        );
        if let Some(cap) = self.cap_s {
            s.push_str(&format!(":cap{cap}"));
        }
        if let Some(e) = &self.edge {
            s.push_str(&format!(
                ":e{}:r{}:a{}:p{}",
                e.edges,
                e.routing.as_str(),
                e.admission.as_str(),
                e.eviction.as_str(),
            ));
            if let Some(mb) = e.cache_mb {
                s.push_str(&format!(":cb{mb}"));
            }
            s.push_str(&format!(":o{}", e.origin_mbps));
        }
        if let Some(w) = self.workers {
            s.push_str(&format!(":w{w}"));
        }
        s
    }

    /// Total session count (expanded members).
    pub fn total_sessions(&self) -> usize {
        self.members.iter().map(|m| m.count).sum()
    }

    /// Expanded per-session system names, in flow-id order.
    pub fn session_systems(&self) -> Vec<&str> {
        let mut out = Vec::with_capacity(self.total_sessions());
        for m in &self.members {
            for _ in 0..m.count {
                out.push(m.system.as_str());
            }
        }
        out
    }

    /// Expanded per-session member configs (the group each flow belongs
    /// to), in flow-id order — what the runtime needs to seed a session:
    /// system name, label, and congestion controller.
    pub fn session_members(&self) -> Vec<&FleetMember> {
        let mut out = Vec::with_capacity(self.total_sessions());
        for m in &self.members {
            for _ in 0..m.count {
                out.push(m);
            }
        }
        out
    }

    /// Whether every session runs the same system *and* the same
    /// congestion controller: `8xVOXEL@bbr` is homogeneous,
    /// `4xVOXEL@bbr+4xVOXEL@cubic` is a contention mix (and is held to
    /// the relaxed mixed-cc fairness band, not the homogeneous one).
    pub fn homogeneous(&self) -> bool {
        self.members
            .iter()
            .all(|m| m.system == self.members[0].system && m.cc_kind() == self.members[0].cc_kind())
    }

    /// The distinct congestion controllers in the fleet, in member order.
    pub fn cc_mix(&self) -> Vec<CcKind> {
        let mut out: Vec<CcKind> = Vec::new();
        for m in &self.members {
            if !out.contains(&m.cc_kind()) {
                out.push(m.cc_kind());
            }
        }
        out
    }

    /// The shared link's bandwidth trace.
    pub fn trace(&self) -> BandwidthTrace {
        BandwidthTrace::constant(self.link_mbps, self.duration_s)
    }
}

impl std::str::FromStr for FleetSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<FleetSpec, SpecError> {
        FleetSpec::parse(s)
    }
}

impl fmt::Display for FleetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_parse() {
        let spec = "BBB:4xVOXEL+2xBOLA+2xBETA:const6:buf3:q64:d300:drr:stg2";
        let s = FleetSpec::parse(spec).expect("parses");
        assert_eq!(s.spec(), spec);
        assert_eq!(FleetSpec::parse(&s.spec()).expect("re-parses"), s);
        assert_eq!(s.total_sessions(), 8);
        assert!(!s.homogeneous());

        let capped = "ToS:8xVOXEL:const12.5:buf1:q32:d120:fifo:stg0:cap60";
        let c = FleetSpec::parse(capped).expect("parses");
        assert_eq!(c.spec(), capped);
        assert_eq!(c.cap_s, Some(60));
        assert_eq!(c.discipline, Discipline::Fifo);
        assert!(c.homogeneous());

        let sharded = "BBB:8xVOXEL:const6:buf3:q64:d300:drr:stg2:cap60:w4";
        let w = FleetSpec::parse(sharded).expect("parses");
        assert_eq!(w.spec(), sharded);
        assert_eq!(w.workers, Some(4));
    }

    #[test]
    fn from_str_and_display_mirror_parse_and_spec() {
        let spec = "BBB:4xVOXEL+2xBOLA:const6:buf3:q64:d300:drr:stg2";
        let s: FleetSpec = spec.parse().expect("FromStr parses");
        assert_eq!(s.to_string(), spec);
        assert_eq!(s, FleetSpec::parse(spec).expect("parses"));
    }

    #[test]
    fn builder_composes_the_typed_surface() {
        let s = FleetSpec::new(VideoId::Tos)
            .member(4, "VOXEL")
            .member_cc(2, "BOLA", CcKind::Bbr)
            .link(12.0)
            .duration(120)
            .buffer(1)
            .queue(32)
            .discipline(Discipline::Fifo)
            .stagger(1)
            .cap(60)
            .workers(2)
            .topology(
                TopologySpec::new(4)
                    .routing(Routing::Robin)
                    .admission(Admission::ReliablePrefix)
                    .eviction(EvictionPolicy::Lfu)
                    .cache_mb(64.0)
                    .origin(50.0),
            );
        assert_eq!(
            s.spec(),
            "ToS:4xVOXEL+2xBOLA@bbr:const12:buf1:q32:d120:fifo:stg1:cap60:e4:rrobin:arel:plfu:cb64:o50:w2"
        );
        assert_eq!(FleetSpec::parse(&s.spec()).expect("round-trips"), s);
        let t = s.edge.as_ref().expect("edge tier");
        assert_eq!(t.cache_budget_bytes(), Some(64 << 20));
        let cfg = t.cache_config();
        assert_eq!(cfg.admission, Admission::ReliablePrefix);
        assert_eq!(cfg.eviction, EvictionPolicy::Lfu);
    }

    #[test]
    fn edge_tokens_round_trip_and_default() {
        // A bare `e` token takes the documented defaults and canonicalizes
        // with every edge knob spelled out (except the unbounded budget).
        let s = FleetSpec::parse("BBB:8xVOXEL:const12:e4").expect("parses");
        let t = s.edge.as_ref().expect("edge tier");
        assert_eq!(t.edges, 4);
        assert_eq!(t.routing, Routing::Hash);
        assert_eq!(t.admission, Admission::Full);
        assert_eq!(t.eviction, EvictionPolicy::Lru);
        assert_eq!(t.cache_mb, None);
        assert!((t.origin_mbps - 100.0).abs() < 1e-12);
        assert_eq!(
            s.spec(),
            "BBB:8xVOXEL:const12:buf3:q64:d300:drr:stg0:e4:rhash:afull:plru:o100"
        );
        assert_eq!(FleetSpec::parse(&s.spec()).expect("re-parses"), s);
        // Budgeted form keeps the cb token.
        let b = FleetSpec::parse("BBB:8xVOXEL:const12:e2:anone:cb0.5:o25").expect("parses");
        let t = b.edge.as_ref().expect("edge tier");
        assert_eq!(t.admission, Admission::None);
        assert_eq!(t.cache_budget_bytes(), Some(512 * 1024));
        assert_eq!(
            b.spec(),
            "BBB:8xVOXEL:const12:buf3:q64:d300:drr:stg0:e2:rhash:anone:plru:cb0.5:o25"
        );
    }

    #[test]
    fn edge_tokens_require_the_edge_count_first() {
        for bad in [
            "BBB:2xVOXEL:const6:rhash",
            "BBB:2xVOXEL:const6:afull",
            "BBB:2xVOXEL:const6:plru",
            "BBB:2xVOXEL:const6:cb64",
            "BBB:2xVOXEL:const6:o50",
            "BBB:2xVOXEL:const6:e0",
            "BBB:2xVOXEL:const6:e4:rwat",
            "BBB:2xVOXEL:const6:e4:awat",
            "BBB:2xVOXEL:const6:e4:pwat",
            "BBB:2xVOXEL:const6:e4:cbx",
            "BBB:2xVOXEL:const6:e4:ox",
        ] {
            assert!(FleetSpec::parse(bad).is_err(), "accepted {bad:?}");
        }
        let err = FleetSpec::parse("BBB:2xVOXEL:const6:rhash").expect_err("rejects");
        assert!(err.expected.contains("e<edges>"), "error was {err}");
    }

    #[test]
    fn workers_token_parses_and_resolves() {
        // Canonical specs without a `w` token stay canonical (no `:w`).
        let s = FleetSpec::parse("BBB:2xVOXEL:const6").expect("parses");
        assert_eq!(s.workers, None);
        assert!(!s.spec().contains(":w"));
        // An explicit token wins over the environment and clamps to the
        // session count.
        assert_eq!(resolve_workers(Some(4), 8), 4);
        assert_eq!(resolve_workers(Some(64), 8), 8);
        assert_eq!(resolve_workers(Some(1), 8), 1);
        for bad in ["BBB:2xVOXEL:const6:w0", "BBB:2xVOXEL:const6:wx"] {
            assert!(FleetSpec::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "BBB",
            "BBB:2xVOXEL",
            "NOPE:2xVOXEL:const6",
            "BBB:2xWAT:const6",
            "BBB:0xVOXEL:const6",
            "BBB:VOXEL:const6",
            "BBB:2xVOXEL:tmobile",
            "BBB:2xVOXEL:const6:wat9",
            "BBB:2xVOXEL@:const6",
            "BBB:2xWAT@bbr:const6",
        ] {
            assert!(FleetSpec::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_errors_are_structured() {
        // Unknown token: names itself, its position, and the token menu.
        let err = FleetSpec::parse("BBB:2xVOXEL:const6:buf3:nope9").expect_err("rejects");
        assert_eq!(err.token, "nope9");
        assert_eq!(err.pos, 4);
        assert!(
            err.expected.contains("fifo|drr"),
            "expected = {}",
            err.expected
        );
        // Bad video: position 0.
        let err = FleetSpec::parse("NOPE:2xVOXEL:const6").expect_err("rejects");
        assert_eq!((err.token.as_str(), err.pos), ("NOPE", 0));
        // Bad trace: position 2.
        let err = FleetSpec::parse("BBB:2xVOXEL:tmobile").expect_err("rejects");
        assert_eq!((err.token.as_str(), err.pos), ("tmobile", 2));
        // Display carries all three parts.
        let msg = err.to_string();
        assert!(
            msg.contains("\"tmobile\"") && msg.contains("position 2"),
            "{msg}"
        );
    }

    #[test]
    fn cc_knob_round_trips_through_parse() {
        // Explicit suffixes survive verbatim — including a spelled-out
        // `@cubic`, which runs identically to no suffix but is its own
        // canonical form.
        for spec in [
            "BBB:8xVOXEL@bbr:const6:buf3:q64:d300:drr:stg2",
            "BBB:4xVOXEL@bbr+4xVOXEL@cubic:const6:buf3:q64:d300:fifo:stg2",
            "BBB:3xVOXEL@cubic+3xVOXEL@delay+2xVOXEL@bbr:const6:buf3:q64:d300:fifo:stg1",
            "BBB:2xBOLA@delay+2xVOXEL:const6:buf3:q64:d300:drr:stg0",
        ] {
            let s = FleetSpec::parse(spec).expect("parses");
            assert_eq!(s.spec(), spec, "canonical form drifted");
            assert_eq!(FleetSpec::parse(&s.spec()).expect("re-parses"), s);
        }
        let s = FleetSpec::parse("BBB:4xVOXEL@bbr+4xVOXEL@cubic:const6").expect("parses");
        assert_eq!(s.members[0].cc, Some(CcKind::Bbr));
        assert_eq!(s.members[1].cc, Some(CcKind::Cubic));
        assert_eq!(
            s.session_members()
                .iter()
                .map(|m| m.label())
                .collect::<Vec<_>>()[3..5],
            ["VOXEL@bbr".to_string(), "VOXEL@cubic".to_string()]
        );
        // No suffix means CUBIC but stays suffix-free in canonical form.
        let plain = FleetSpec::parse("BBB:2xVOXEL:const6").expect("parses");
        assert_eq!(plain.members[0].cc, None);
        assert_eq!(plain.members[0].cc_kind(), CcKind::Cubic);
        assert!(!plain.spec().contains('@'));
    }

    #[test]
    fn cc_knob_mix_and_homogeneity() {
        let homo = FleetSpec::parse("BBB:8xVOXEL@bbr:const6").expect("parses");
        assert!(homo.homogeneous());
        assert_eq!(homo.cc_mix(), [CcKind::Bbr]);
        // Same ABR, different cc: a contention mix, not homogeneous.
        let mix = FleetSpec::parse("BBB:4xVOXEL@bbr+4xVOXEL@cubic:const6").expect("parses");
        assert!(!mix.homogeneous());
        assert_eq!(mix.cc_mix(), [CcKind::Bbr, CcKind::Cubic]);
        // An explicit @cubic and no suffix are the same effective cc.
        let same = FleetSpec::parse("BBB:4xVOXEL@cubic+4xVOXEL:const6").expect("parses");
        assert!(same.homogeneous());
        assert_eq!(same.cc_mix(), [CcKind::Cubic]);
    }

    #[test]
    fn unknown_cc_error_names_the_token_and_choices() {
        let err = FleetSpec::parse("BBB:2xVOXEL@reno:const6")
            .expect_err("rejects")
            .to_string();
        assert!(err.contains("\"reno\""), "error was {err:?}");
        assert!(err.contains("cubic|delay|bbr"), "error was {err:?}");
    }

    #[test]
    fn cc_knob_composes_with_workers_token() {
        let s = FleetSpec::parse("BBB:4xVOXEL@bbr+4xVOXEL@cubic:const6:buf3:q64:d300:fifo:stg2:w4")
            .expect("parses");
        assert_eq!(s.workers, Some(4));
        assert_eq!(s.members[0].cc, Some(CcKind::Bbr));
        assert_eq!(
            s.spec(),
            "BBB:4xVOXEL@bbr+4xVOXEL@cubic:const6:buf3:q64:d300:fifo:stg2:w4"
        );
        assert_eq!(resolve_workers(s.workers, s.total_sessions()), 4);
        // And the `w` clamp still applies with cc groups in play.
        assert_eq!(resolve_workers(Some(64), s.total_sessions()), 8);
    }

    #[test]
    fn session_systems_expand_in_flow_order() {
        let s = FleetSpec::parse("BBB:2xVOXEL+1xBOLA:const6").expect("parses");
        assert_eq!(s.session_systems(), ["VOXEL", "VOXEL", "BOLA"]);
        // Un-specified knobs take the documented defaults.
        assert_eq!(s.buffer_segments, 3);
        assert_eq!(s.queue_packets, 64);
        assert_eq!(s.duration_s, 300);
        assert_eq!(s.stagger_s, 0);
        assert_eq!(s.discipline, Discipline::drr());
        assert_eq!(s.edge, None);
    }

    #[test]
    fn name_tables_cover_the_legend() {
        for sys in [
            "BOLA",
            "BOLA-SSIM",
            "MPC",
            "MPC*",
            "Tput",
            "BETA",
            "VOXEL",
            "VOXEL-tuned",
            "VOXEL-rel",
        ] {
            assert!(system_by_name(sys).is_some(), "missing {sys}");
        }
        for (name, id) in [
            ("BBB", VideoId::Bbb),
            ("ToS", VideoId::Tos),
            ("P3", VideoId::YouTube(3)),
        ] {
            assert_eq!(video_by_name(name), Some(id));
            assert_eq!(video_name(id), name);
        }
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    const SYSTEMS: [&str; 9] = [
        "BOLA",
        "BOLA-SSIM",
        "MPC",
        "MPC*",
        "Tput",
        "BETA",
        "VOXEL",
        "VOXEL-tuned",
        "VOXEL-rel",
    ];

    fn video(i: usize) -> VideoId {
        [
            VideoId::Bbb,
            VideoId::Ed,
            VideoId::Sintel,
            VideoId::Tos,
            VideoId::YouTube(7),
        ][i]
    }

    fn cc(i: usize) -> Option<CcKind> {
        [
            None,
            Some(CcKind::Cubic),
            Some(CcKind::Delay),
            Some(CcKind::Bbr),
        ][i]
    }

    proptest! {
        /// The API-redesign contract: `parse` is the exact inverse of
        /// `Display` over the whole typed surface, edge tier included.
        #[test]
        fn parse_display_round_trips(
            video_i in 0usize..5,
            groups in proptest::collection::vec((1usize..5, 0usize..9, 0usize..4), 1..4),
            link_half_mbps in 1u32..100,
            knobs in (1usize..8, 16usize..512, 30usize..400, 0usize..5),
            tail in (proptest::bool::ANY, 0usize..3, 0usize..3),
            edge in prop_oneof![
                Just(None),
                (1usize..6, 0usize..3, 0usize..3, 0usize..2, 0usize..4, 1u32..80)
                    .prop_map(Some),
            ],
        ) {
            let (buf, q, d, stg) = knobs;
            let (fifo, cap_i, w_i) = tail;
            let mut s = FleetSpec::new(video(video_i))
                .link(link_half_mbps as f64 / 2.0)
                .buffer(buf)
                .queue(q)
                .duration(d)
                .stagger(stg)
                .discipline(if fifo { Discipline::Fifo } else { Discipline::drr() });
            for (count, sys_i, cc_i) in groups {
                s = match cc(cc_i) {
                    Some(k) => s.member_cc(count, SYSTEMS[sys_i], k),
                    None => s.member(count, SYSTEMS[sys_i]),
                };
            }
            if cap_i > 0 {
                s = s.cap(cap_i * 30);
            }
            if w_i > 0 {
                s = s.workers(w_i * 2);
            }
            if let Some((edges, r_i, a_i, p_i, cb_i, o_half)) = edge {
                let mut t = TopologySpec::new(edges)
                    .routing([Routing::Hash, Routing::Robin, Routing::Least][r_i])
                    .admission(
                        [Admission::Full, Admission::ReliablePrefix, Admission::None][a_i],
                    )
                    .eviction([EvictionPolicy::Lru, EvictionPolicy::Lfu][p_i])
                    .origin(o_half as f64 / 2.0);
                if cb_i > 0 {
                    t = t.cache_mb(cb_i as f64 / 2.0);
                }
                s = s.topology(t);
            }
            let rendered = s.to_string();
            let parsed = rendered.parse::<FleetSpec>();
            prop_assert!(parsed.is_ok(), "{:?} failed: {:?}", rendered, parsed.err());
            let back = parsed.unwrap();
            prop_assert_eq!(&back, &s, "round-trip drifted for {}", rendered);
            prop_assert_eq!(back.to_string(), rendered);
        }
    }
}
