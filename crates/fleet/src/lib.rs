#![warn(missing_docs)]
//! # voxel-fleet
//!
//! Multi-session serving runtime: N client sessions — possibly running
//! different ABRs (VOXEL, BOLA, BETA, …) — stream concurrently through
//! **one** emulated bottleneck link, inside one deterministic
//! discrete-event loop.
//!
//! The paper evaluates VOXEL one client at a time (§5); the ROADMAP
//! north-star is a production-scale system serving heavy traffic, where
//! CUBIC fairness and unreliable-stream behaviour interact across
//! competing sessions. This crate provides that testbed:
//!
//! - [`spec`]: a testkit-style fleet spec grammar
//!   (`BBB:4xVOXEL+2xBOLA+2xBETA:const6:buf3:q64:d300:drr:stg2`) with
//!   exact `parse`/`spec` round-tripping, plus the canonical
//!   system/video name tables shared with `voxel-testkit`.
//! - [`run`]: the fleet event loop — per-session QUIC\* endpoint pairs
//!   multiplexed over a [`voxel_netem::SharedLink`] (FIFO or deficit
//!   round robin with per-flow accounting), pumped exactly like the
//!   single-session loop in `voxel-core`.
//! - [`metrics`]: cross-session metrics — per-flow throughput shares,
//!   the Jain fairness index, aggregate QoE — emitted through
//!   `voxel-trace` under the `fleet` layer.
//!
//! Determinism contract: a fleet run is a pure function of its
//! [`FleetSpec`] — same spec, byte-identical timeline — which is what
//! lets `voxel-testkit` hold fleet runs to golden digests.

pub mod metrics;
pub mod run;
pub mod spec;

pub use metrics::{jain_index, FleetResult};
pub use run::{run_experiment_fleet, run_fleet, run_specs};
pub use spec::{system_by_name, video_by_name, FleetMember, FleetSpec};
