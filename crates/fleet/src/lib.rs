#![warn(missing_docs)]
//! # voxel-fleet
//!
//! Multi-session serving runtime: N client sessions — possibly running
//! different ABRs (VOXEL, BOLA, BETA, …) — stream concurrently through
//! **one** emulated bottleneck link, inside one deterministic
//! discrete-event loop.
//!
//! The paper evaluates VOXEL one client at a time (§5); the ROADMAP
//! north-star is a production-scale system serving heavy traffic, where
//! CUBIC fairness and unreliable-stream behaviour interact across
//! competing sessions. This crate provides that testbed:
//!
//! - [`spec`]: a testkit-style fleet spec grammar
//!   (`BBB:4xVOXEL+2xBOLA+2xBETA:const6:buf3:q64:d300:drr:stg2`) with
//!   exact `parse`/`spec` round-tripping, plus the canonical
//!   system/video name tables shared with `voxel-testkit`.
//! - [`run`]: the sharded fleet runtime — per-session QUIC\* endpoint
//!   pairs, each with its **own** event queue, multiplexed over a
//!   [`voxel_netem::SharedLink`] (FIFO or deficit round robin with
//!   per-flow accounting). Sessions advance in conservative-parallel
//!   barrier rounds (lookahead = the link's propagation delay) and can
//!   shard across worker threads (the `:w<N>` spec token /
//!   `VOXEL_SHARD_WORKERS`); the link itself is pumped single-threaded
//!   between rounds. See DESIGN.md §14.
//! - [`edge`]: the edge/CDN serving tier — M edge servers with
//!   byte-budgeted, byte-range-aware caches in front of one shared
//!   origin backhaul, plus the zipf-popularity / Poisson-arrivals
//!   workload generator (DESIGN.md §16). Enabled per-spec via
//!   [`TopologySpec`]; absent, the runtime is byte-identical to the
//!   classic single-server fleet.
//! - [`metrics`]: cross-session metrics — per-flow throughput shares,
//!   the Jain fairness index, aggregate QoE — emitted through
//!   `voxel-trace` under the `fleet` layer.
//!
//! Determinism contract: a fleet run is a pure function of its
//! [`FleetSpec`] — same spec, byte-identical timeline, **at every worker
//! count** — which is what lets `voxel-testkit` hold fleet runs to
//! golden digests and to the sharded-parity suite.

pub mod edge;
pub mod metrics;
pub mod run;
mod shard;
pub mod spec;

pub use edge::{zipf_poisson_arrivals, EdgeReport, EdgeStats, Workload};
pub use metrics::{jain_index, FleetResult};
pub use run::{run_experiment_fleet, run_fleet, run_fleet_workload, run_specs};
pub use spec::{
    resolve_workers, system_by_name, video_by_name, FleetMember, FleetSpec, Routing, SpecError,
    TopologySpec,
};
// Re-exported so spec consumers (testkit oracles, the cc_shootout
// report) can match on `@cc` groups without a direct quic dependency.
pub use voxel_quic::CcKind;
