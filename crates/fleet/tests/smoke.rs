//! End-to-end smoke of the fleet event loop on a small mixed fleet.
//! Heavier conformance (golden digests, fairness oracles) lives in the
//! workspace-level `tests/fleet.rs` and `voxel-testkit`.

use voxel_core::ContentCache;
use voxel_fleet::{run_fleet, FleetSpec};
use voxel_trace::Tracer;

#[test]
fn small_mixed_fleet_plays_to_completion() {
    let cache = ContentCache::top_level_only();
    let spec =
        FleetSpec::parse("BBB:2xVOXEL+1xBOLA:const6:buf3:q64:d60:drr:stg1").expect("spec parses");
    let r = run_fleet(&spec, &cache, Tracer::disabled()).expect("fleet runs");

    assert_eq!(r.sessions.len(), 3);
    assert_eq!(r.flows.len(), 3);
    assert!(r.all_completed(), "sessions: {:?}", r.sessions);
    assert!(r.end_s > 0.0 && r.end_s < 400.0, "end_s = {}", r.end_s);
    assert!(r.loop_iters > 0);

    let share_sum: f64 = r.shares_pct.iter().sum();
    assert!((share_sum - 100.0).abs() < 1e-6, "shares sum {share_sum}");
    assert!(r.jain > 0.0 && r.jain <= 1.0 + 1e-12, "jain = {}", r.jain);
    for f in &r.flows {
        assert!(f.bytes_delivered > 0, "flow starved: {f:?}");
    }

    // Determinism: same spec, identical outcome.
    let again = run_fleet(&spec, &cache, Tracer::disabled()).expect("fleet runs");
    assert_eq!(r.loop_iters, again.loop_iters);
    assert_eq!(r.shares_pct, again.shares_pct);
    assert_eq!(r.end_s, again.end_s);
}
