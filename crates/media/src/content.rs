//! Per-video content profiles (Tables 1 and 3).
//!
//! A [`ContentProfile`] captures everything content-dependent in the
//! synthetic model: the per-segment bitrate variability of the capped-VBR
//! encode (Tables 1/3 report the standard deviation in Mbps), and the
//! motion/complexity process that drives both frame sizes and frame-drop
//! tolerance. The motion parameters are calibrated from the paper's
//! qualitative descriptions — e.g. §C explains that *P9* (an "unboxing"
//! video against a static background) tolerates 80 % frame drops in half of
//! its segments, while *P10* (a street-dance performance with ~50 dancers
//! and no scene cuts) tolerates almost none.

/// Identifier for one of the 14 evaluation videos.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VideoId {
    /// Big Buck Bunny (comedy, Table 1).
    Bbb,
    /// Elephants Dream (sci-fi, Table 1).
    Ed,
    /// Sintel (fantasy, Table 1).
    Sintel,
    /// Tears of Steel (sci-fi, Table 1).
    Tos,
    /// YouTube video P1..P10 (Table 3); argument is 1..=10.
    YouTube(u8),
}

impl VideoId {
    /// The four videos from prior work used in the evaluation (Table 1).
    pub const EVAL: [VideoId; 4] = [VideoId::Bbb, VideoId::Ed, VideoId::Sintel, VideoId::Tos];

    /// All 14 videos used in §3/§C.
    pub fn all() -> Vec<VideoId> {
        let mut v = Self::EVAL.to_vec();
        v.extend((1..=10).map(VideoId::YouTube));
        v
    }

    /// Short display name used in figure legends (BBB, ED, …, P1..P10).
    pub fn short_name(self) -> String {
        match self {
            VideoId::Bbb => "BBB".into(),
            VideoId::Ed => "ED".into(),
            VideoId::Sintel => "Sintel".into(),
            VideoId::Tos => "ToS".into(),
            VideoId::YouTube(n) => format!("P{n}"),
        }
    }

    /// The content profile for this video.
    pub fn profile(self) -> ContentProfile {
        ContentProfile::for_video(self)
    }

    /// Deterministic per-video RNG seed namespace.
    pub fn seed(self) -> u64 {
        match self {
            VideoId::Bbb => 0x0bb,
            VideoId::Ed => 0x0ed,
            VideoId::Sintel => 0x517,
            VideoId::Tos => 0x705,
            VideoId::YouTube(n) => 0x900 + n as u64,
        }
    }
}

impl std::fmt::Display for VideoId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.short_name())
    }
}

/// Content-dependent parameters of the synthetic video model.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentProfile {
    /// The video this profile describes.
    pub id: VideoId,
    /// Genre / channel category as reported in Tables 1 & 3.
    pub genre: &'static str,
    /// Standard deviation of per-segment bitrate at Q12, in Mbps (Tables 1 & 3).
    pub bitrate_std_mbps: f64,
    /// First segment of the 75-segment clip within the full video
    /// ("Range (Segments)" column of Tables 1 & 3).
    pub segment_range_start: u32,
    /// Mean of the per-segment motion/complexity process, in `[0, 1]`.
    /// High motion ⇒ larger P/B frames and poorer error concealment.
    pub motion_mean: f64,
    /// Spread (std) of per-segment mean motion.
    pub motion_spread: f64,
    /// Within-segment frame-to-frame motion jitter.
    pub motion_jitter: f64,
    /// Probability that a segment is a near-static scene (title card, still
    /// shot) that can tolerate dropping "all but the I-frame" (§3 insight 1).
    pub static_scene_prob: f64,
    /// Probability of a scene cut per segment (cuts concentrate bytes into
    /// the I-frame and reset error propagation sensitivity).
    pub cut_rate: f64,
}

impl ContentProfile {
    /// Built-in calibration for each of the 14 videos.
    ///
    /// `bitrate_std_mbps` and `segment_range_start` are verbatim from
    /// Tables 1 and 3. Motion parameters are calibrated so the drop-tolerance
    /// CDFs (Figs 1 & 19) and VBR traces (Fig 15) match the paper's shapes.
    pub fn for_video(id: VideoId) -> ContentProfile {
        // (genre, std, range_start, motion_mean, spread, jitter, static_p, cut_rate)
        let (genre, std, start, mm, ms, mj, sp, cr) = match id {
            VideoId::Bbb => ("Comedy", 3.77, 1, 0.28, 0.16, 0.08, 0.16, 0.30),
            VideoId::Ed => ("Sci-Fi", 5.6, 39, 0.34, 0.20, 0.09, 0.10, 0.25),
            VideoId::Sintel => ("Fantasy", 7.5, 148, 0.40, 0.22, 0.10, 0.08, 0.30),
            VideoId::Tos => ("Sci-Fi", 3.52, 1, 0.26, 0.14, 0.07, 0.14, 0.25),
            VideoId::YouTube(1) => ("Beauty", 2.2, 1, 0.20, 0.10, 0.06, 0.18, 0.20),
            VideoId::YouTube(2) => ("Comedy", 1.88, 56, 0.27, 0.13, 0.07, 0.12, 0.30),
            VideoId::YouTube(3) => ("Sports", 2.52, 5, 0.45, 0.15, 0.10, 0.04, 0.35),
            VideoId::YouTube(4) => ("Gaming", 2.05, 2, 0.36, 0.14, 0.10, 0.06, 0.25),
            VideoId::YouTube(5) => ("Cooking", 1.76, 1, 0.24, 0.11, 0.06, 0.15, 0.25),
            VideoId::YouTube(6) => ("Music", 4.35, 23, 0.50, 0.18, 0.12, 0.03, 0.45),
            VideoId::YouTube(7) => ("Entertainment", 2.03, 33, 0.29, 0.13, 0.08, 0.10, 0.30),
            VideoId::YouTube(8) => ("Politics", 1.6, 4, 0.16, 0.08, 0.04, 0.25, 0.15),
            // P9: "unboxing" video, presenter against a gray background —
            // minimal inter-frame change, tolerates 80% drops (§C).
            VideoId::YouTube(9) => ("Tech", 1.7, 1, 0.055, 0.02, 0.015, 0.45, 0.10),
            // P10: Japanese street-dance, ~50 performers, no cuts — errors
            // propagate to segment end; almost no drop tolerance (§C).
            VideoId::YouTube(10) => ("Entertainment", 1.94, 3, 0.80, 0.06, 0.05, 0.0, 0.0),
            // lint: allow(panic) only P1..P10 exist (§C Table 3); any other id is a programmer error
            VideoId::YouTube(n) => panic!("unknown YouTube video P{n}"),
        };
        ContentProfile {
            id,
            genre,
            bitrate_std_mbps: std,
            segment_range_start: start,
            motion_mean: mm,
            motion_spread: ms,
            motion_jitter: mj,
            static_scene_prob: sp,
            cut_rate: cr,
        }
    }

    /// Relative per-segment bitrate variability (std / mean at Q12).
    pub fn relative_std(&self) -> f64 {
        self.bitrate_std_mbps / crate::ladder::QualityLevel::MAX.avg_bitrate_mbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_values_are_verbatim() {
        let bbb = ContentProfile::for_video(VideoId::Bbb);
        assert_eq!(bbb.bitrate_std_mbps, 3.77);
        assert_eq!(bbb.genre, "Comedy");
        let sintel = ContentProfile::for_video(VideoId::Sintel);
        assert_eq!(sintel.bitrate_std_mbps, 7.5);
        assert_eq!(sintel.segment_range_start, 148);
        let ed = ContentProfile::for_video(VideoId::Ed);
        assert_eq!(ed.segment_range_start, 39);
    }

    #[test]
    fn table_3_values_are_verbatim() {
        assert_eq!(VideoId::YouTube(6).profile().bitrate_std_mbps, 4.35);
        assert_eq!(VideoId::YouTube(6).profile().genre, "Music");
        assert_eq!(VideoId::YouTube(9).profile().bitrate_std_mbps, 1.7);
        assert_eq!(VideoId::YouTube(10).profile().segment_range_start, 3);
    }

    #[test]
    fn p9_is_low_motion_p10_is_high_motion() {
        let p9 = VideoId::YouTube(9).profile();
        let p10 = VideoId::YouTube(10).profile();
        assert!(p9.motion_mean < 0.1);
        assert!(p10.motion_mean > 0.7);
        assert_eq!(p10.cut_rate, 0.0, "P10 has no scene cuts");
        assert!(p9.static_scene_prob > 0.3);
    }

    #[test]
    fn all_videos_enumerate_fourteen() {
        let all = VideoId::all();
        assert_eq!(all.len(), 14);
        // Each must produce a profile without panicking.
        for v in all {
            let p = v.profile();
            assert!((0.0..=1.0).contains(&p.motion_mean));
            assert!(p.bitrate_std_mbps > 0.0);
        }
    }

    #[test]
    fn short_names_match_figures() {
        assert_eq!(VideoId::Bbb.short_name(), "BBB");
        assert_eq!(VideoId::Tos.short_name(), "ToS");
        assert_eq!(VideoId::YouTube(4).short_name(), "P4");
    }

    #[test]
    fn seeds_are_distinct() {
        let mut seeds: Vec<u64> = VideoId::all().into_iter().map(|v| v.seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 14);
    }

    #[test]
    fn relative_std_matches_table() {
        let p = VideoId::Sintel.profile();
        assert!((p.relative_std() - 0.75).abs() < 1e-12);
    }
}
