//! Analytic QoE model: SSIM (primary), VMAF and PSNR (companions).
//!
//! Replaces FFmpeg's `ssim` filter on decoded, zero-padded frames. The model
//! has two parts:
//!
//! 1. **Encoding distortion** (`base_distortion`): a rate–distortion curve
//!    `d = complexity · rd_coeff · (R_max / R_level)^rd_exp` against the 4K
//!    reference (§2 "Reference quality level"), so Q12 scores ≈0.995+, most
//!    Q9 segments fall below SSIM 0.99 (Fig 1d), and Q6 lands around
//!    0.9–0.97.
//! 2. **Loss distortion**: a lost (or partially lost, zero-padded) frame is
//!    concealed by copying the previous frame, costing `κ · motion · frac`;
//!    the error then propagates along the reference DAG with per-hop
//!    attenuation (decoder error concealment + intra-coded macroblocks),
//!    so dropping an early P-frame is far costlier than a tail b-frame.
//!
//! Calibration targets (verified by tests here and experiments in
//! `voxel-bench`): at Q12/SSIM 0.99 at least half the segments tolerate
//! 10–20 % frame drops (Fig 1a); tolerance shrinks at Q9 (Fig 1b) and
//! recovers when targeting 0.95 (Fig 1c); P9 tolerates ~80 % drops while
//! P10 tolerates almost none (Fig 19, §C).

use crate::gop::FRAMES_PER_SEGMENT;
use crate::ladder::QualityLevel;
use crate::video::Segment;

/// Which QoE metric a component optimizes for (VOXEL is metric-agnostic,
/// §4.3 / Fig 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QoeMetric {
    /// Structural similarity (the paper's primary metric).
    #[default]
    Ssim,
    /// Netflix VMAF, 0..100.
    Vmaf,
    /// Peak signal-to-noise ratio, dB.
    Psnr,
}

/// QoE scores of a (possibly impaired) segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QoeScores {
    /// All-component SSIM in `[0, 1]`.
    pub ssim: f64,
    /// VMAF in `[0, 100]`.
    pub vmaf: f64,
    /// PSNR in dB (≈20–50).
    pub psnr_db: f64,
}

impl QoeScores {
    /// Extract the score for `metric`.
    pub fn get(&self, metric: QoeMetric) -> f64 {
        match metric {
            QoeMetric::Ssim => self.ssim,
            QoeMetric::Vmaf => self.vmaf,
            QoeMetric::Psnr => self.psnr_db,
        }
    }
}

/// Per-frame loss state of a segment: the fraction of each frame's bytes
/// that were *not* delivered (and hence zero-padded before decode, §4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct LossMap {
    frac: Vec<f64>,
}

impl LossMap {
    /// No losses.
    pub fn none() -> LossMap {
        LossMap {
            frac: vec![0.0; FRAMES_PER_SEGMENT],
        }
    }

    /// Entire frames dropped (fraction 1.0 each).
    pub fn drop_frames(frames: &[usize]) -> LossMap {
        let mut m = Self::none();
        for &f in frames {
            m.set(f, 1.0);
        }
        m
    }

    /// Record that `frac` of frame `frame`'s bytes were lost.
    pub fn set(&mut self, frame: usize, frac: f64) {
        assert!(frame < self.frac.len(), "frame index out of range");
        self.frac[frame] = frac.clamp(0.0, 1.0);
    }

    /// Add additional loss to a frame (saturating at 1.0).
    pub fn add(&mut self, frame: usize, frac: f64) {
        let cur = self.frac[frame];
        self.set(frame, cur + frac);
    }

    /// Fraction lost for `frame`.
    pub fn get(&self, frame: usize) -> f64 {
        self.frac[frame]
    }

    /// True if nothing was lost.
    pub fn is_clean(&self) -> bool {
        // lint: allow(float-eq) exact sentinel — fractions are assigned 0.0, never computed
        self.frac.iter().all(|&f| f == 0.0)
    }

    /// Number of fully dropped frames.
    pub fn full_drops(&self) -> usize {
        self.frac.iter().filter(|&&f| f >= 1.0).count()
    }
}

impl Default for LossMap {
    fn default() -> Self {
        Self::none()
    }
}

/// The analytic QoE model with its calibration constants.
#[derive(Debug, Clone, PartialEq)]
pub struct QoeModel {
    /// Concealment-error coefficient: distortion of a fully lost frame is
    /// `kappa * motion`.
    pub kappa: f64,
    /// Per-hop attenuation of propagated error along the reference DAG.
    pub attenuation: f64,
    /// Rate–distortion coefficient at Q12 for unit complexity.
    pub rd_coeff: f64,
    /// Rate–distortion exponent over the bitrate ratio.
    pub rd_exp: f64,
}

impl Default for QoeModel {
    fn default() -> Self {
        QoeModel {
            kappa: 0.28,
            attenuation: 0.82,
            rd_coeff: 0.0045,
            rd_exp: 1.55,
        }
    }
}

impl QoeModel {
    /// Encoding distortion of `seg` at `level` against the reference
    /// (0 = perfect).
    ///
    /// The paper's reference is the **Q12 (4K) encode itself**, not the
    /// uncompressed source ("we measure the difference between the highest
    /// quality a user could see and the quality that they actually see",
    /// §2) — so a pristine Q12 segment scores SSIM 1.0 exactly, which is
    /// how VOXEL attains perfect scores in Fig 11. The `− 1` term makes
    /// the distortion vanish at Q12.
    pub fn base_distortion(&self, seg: &Segment, level: QualityLevel) -> f64 {
        let ratio = QualityLevel::MAX.avg_bitrate_mbps() / level.avg_bitrate_mbps();
        (seg.complexity * self.rd_coeff * (ratio.powf(self.rd_exp) - 1.0)).min(0.35)
    }

    /// SSIM of the pristine (loss-free) segment at `level`.
    pub fn pristine_ssim(&self, seg: &Segment, level: QualityLevel) -> f64 {
        1.0 - self.base_distortion(seg, level)
    }

    /// Pristine scores for all three metrics.
    pub fn pristine(&self, seg: &Segment, level: QualityLevel) -> QoeScores {
        self.eval(seg, level, &LossMap::none())
    }

    /// Evaluate the segment at `level` with the given loss state.
    ///
    /// Frames are processed in decode order so every reference is scored
    /// before its dependents; a frame's inherited error is the mean of its
    /// references' total error, attenuated per hop.
    pub fn eval(&self, seg: &Segment, level: QualityLevel, loss: &LossMap) -> QoeScores {
        let base = self.base_distortion(seg, level);
        let gop = &seg.gop;
        let n = gop.len();
        let mut d_total = vec![0.0f64; n];

        for &fi in &gop.decode_order {
            let frame = &gop.frames[fi];
            let frac = loss.get(fi);
            // Concealment error for the lost portion of this frame.
            let own = self.kappa * frame.motion * frac;
            // Inherited error from corrupted references (weighted by how
            // much of this frame actually predicts, i.e. survived).
            let inherited = if frame.refs.is_empty() {
                0.0
            } else {
                let mean_ref: f64 =
                    frame.refs.iter().map(|&r| d_total[r]).sum::<f64>() / frame.refs.len() as f64;
                self.attenuation * mean_ref
            };
            d_total[fi] = (own + inherited).min(1.0);
        }

        let mean_d: f64 = d_total.iter().sum::<f64>() / n as f64;
        let total = (base + mean_d).min(1.0);

        QoeScores {
            ssim: (1.0 - total).clamp(0.0, 1.0),
            vmaf: Self::vmaf_from_distortion(total),
            psnr_db: Self::psnr_from_distortion(total),
        }
    }

    /// Estimate the VMAF score corresponding to an SSIM value under this
    /// model (used by metric-agnostic components that only have the
    /// manifest's SSIM map, §4.3 / Fig 7).
    pub fn ssim_to_vmaf(ssim: f64) -> f64 {
        Self::vmaf_from_distortion((1.0 - ssim).clamp(0.0, 1.0))
    }

    /// Estimate the PSNR (dB) corresponding to an SSIM value under this
    /// model.
    pub fn ssim_to_psnr(ssim: f64) -> f64 {
        Self::psnr_from_distortion((1.0 - ssim).clamp(0.0, 1.0))
    }

    /// Map total distortion to a VMAF-like 0..100 score (monotone).
    fn vmaf_from_distortion(d: f64) -> f64 {
        (100.0 * (1.0 - (d * 6.0).powf(0.85)).max(0.0)).clamp(0.0, 100.0)
    }

    /// Map total distortion to a PSNR-like dB value (monotone).
    fn psnr_from_distortion(d: f64) -> f64 {
        50.0 - 10.0 * (1.0 + 2500.0 * d * d).log10()
    }

    /// The largest number of frames (chosen greedily in increasing order of
    /// harm: unreferenced first, lowest inbound-rank × motion) that can be
    /// dropped while keeping SSIM ≥ `target`. Used by the §3 insight-1
    /// analysis; the I-frame is never dropped.
    pub fn max_droppable_frames(
        &self,
        seg: &Segment,
        level: QualityLevel,
        target_ssim: f64,
    ) -> usize {
        let order = crate::qoe::drop_order(seg);
        let mut loss = LossMap::none();
        let mut dropped = 0;
        for &f in &order {
            loss.set(f, 1.0);
            if self.eval(seg, level, &loss).ssim >= target_ssim {
                dropped += 1;
            } else {
                loss.set(f, 0.0);
                // Greedy with one level of look-ahead: a later frame in the
                // order can't help once this one fails (order is by harm),
                // so stop.
                break;
            }
        }
        dropped
    }
}

/// The canonical "drop order" for a segment: frames sorted by increasing
/// harm — unreferenced/low-rank/low-motion frames first, the I-frame never.
/// This is the per-frame priority that underlies ordering ③ of §4.1
/// (inbound-reference rank), shared here so both the QoE analysis and
/// `voxel-prep` use identical ranking.
pub fn drop_order(seg: &Segment) -> Vec<usize> {
    let gop = &seg.gop;
    let mut order: Vec<usize> = (1..gop.len()).collect();
    let harm = |f: usize| -> f64 {
        let frame = &gop.frames[f];
        // Harm = own concealment error + error induced in dependents.
        let own = frame.motion;
        let induced: f64 = gop
            .transitive_dependents(f)
            .iter()
            .map(|&d| gop.frames[d].size_weight)
            .sum::<f64>();
        own * 0.4 + induced * 24.0
    };
    order.sort_by(|&a, &b| harm(a).total_cmp(&harm(b)).then(a.cmp(&b)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::VideoId;
    use crate::video::Video;

    fn video(id: VideoId) -> Video {
        Video::generate(id)
    }

    #[test]
    fn pristine_q12_is_excellent() {
        let m = QoeModel::default();
        let v = video(VideoId::Bbb);
        for seg in &v.segments {
            let s = m.pristine_ssim(seg, QualityLevel::MAX);
            assert!(s >= 0.985, "seg {} ssim {s}", seg.index);
        }
    }

    #[test]
    fn most_q9_segments_fall_below_099() {
        // Fig 1d: 85% of BBB and 96% of ToS segments at Q9 have SSIM < 0.99.
        let m = QoeModel::default();
        for (id, min_frac) in [(VideoId::Bbb, 0.6), (VideoId::Tos, 0.6)] {
            let v = video(id);
            let below = v
                .segments
                .iter()
                .filter(|s| m.pristine_ssim(s, QualityLevel(9)) < 0.99)
                .count() as f64
                / v.segments.len() as f64;
            assert!(below > min_frac, "{id}: below-0.99 fraction {below}");
        }
    }

    #[test]
    fn q6_lands_in_fig_1d_range() {
        let m = QoeModel::default();
        let v = video(VideoId::Tos);
        for seg in &v.segments {
            let s = m.pristine_ssim(seg, QualityLevel(6));
            assert!((0.75..1.0).contains(&s), "seg {} ssim {s}", seg.index);
        }
    }

    #[test]
    fn ssim_decreases_monotonically_with_level() {
        let m = QoeModel::default();
        let v = video(VideoId::Ed);
        let seg = &v.segments[10];
        let mut prev = 0.0;
        for level in QualityLevel::all() {
            let s = m.pristine_ssim(seg, level);
            assert!(s >= prev, "{level}: {s} < {prev}");
            prev = s;
        }
    }

    #[test]
    fn losses_reduce_all_metrics() {
        let m = QoeModel::default();
        let v = video(VideoId::Sintel);
        let seg = &v.segments[5];
        let clean = m.pristine(seg, QualityLevel::MAX);
        let lossy = m.eval(
            seg,
            QualityLevel::MAX,
            &LossMap::drop_frames(&[3, 6, 9, 12]),
        );
        assert!(lossy.ssim < clean.ssim);
        assert!(lossy.vmaf < clean.vmaf);
        assert!(lossy.psnr_db < clean.psnr_db);
    }

    #[test]
    fn dropping_early_p_hurts_more_than_tail_b() {
        let m = QoeModel::default();
        let v = video(VideoId::Bbb);
        let seg = &v.segments[0];
        let p_early = m.eval(seg, QualityLevel::MAX, &LossMap::drop_frames(&[3]));
        let b_tail = m.eval(seg, QualityLevel::MAX, &LossMap::drop_frames(&[95]));
        assert!(p_early.ssim < b_tail.ssim);
    }

    #[test]
    fn partial_loss_is_milder_than_full_loss() {
        let m = QoeModel::default();
        let v = video(VideoId::Bbb);
        let seg = &v.segments[3];
        let mut half = LossMap::none();
        half.set(30, 0.5);
        let full = LossMap::drop_frames(&[30]);
        let s_half = m.eval(seg, QualityLevel::MAX, &half).ssim;
        let s_full = m.eval(seg, QualityLevel::MAX, &full).ssim;
        let s_clean = m.pristine_ssim(seg, QualityLevel::MAX);
        assert!(s_full <= s_half && s_half <= s_clean);
    }

    #[test]
    fn median_drop_tolerance_at_q12_is_10_to_20_percent_or_more() {
        // Fig 1a: for each video at Q12 at least half the segments tolerate
        // a 10–20% frame loss at SSIM 0.99.
        let m = QoeModel::default();
        for id in [VideoId::Bbb, VideoId::Ed, VideoId::Sintel, VideoId::Tos] {
            let v = video(id);
            let mut tolerances: Vec<f64> = v
                .segments
                .iter()
                .map(|s| {
                    m.max_droppable_frames(s, QualityLevel::MAX, 0.99) as f64
                        / FRAMES_PER_SEGMENT as f64
                })
                .collect();
            tolerances.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = tolerances[tolerances.len() / 2];
            assert!(median >= 0.10, "{id}: median tolerance {median}");
        }
    }

    #[test]
    fn p9_tolerates_far_more_than_p10() {
        let m = QoeModel::default();
        let p9 = video(VideoId::YouTube(9));
        let p10 = video(VideoId::YouTube(10));
        let tol = |v: &Video| {
            let mut t: Vec<f64> = v
                .segments
                .iter()
                .map(|s| {
                    m.max_droppable_frames(s, QualityLevel::MAX, 0.99) as f64
                        / FRAMES_PER_SEGMENT as f64
                })
                .collect();
            t.sort_by(|a, b| a.partial_cmp(b).unwrap());
            t[t.len() / 2]
        };
        let t9 = tol(&p9);
        let t10 = tol(&p10);
        assert!(t9 > 0.5, "P9 median tolerance {t9}");
        assert!(t10 < 0.1, "P10 median tolerance {t10}");
    }

    #[test]
    fn drop_tolerance_shrinks_at_q9_and_recovers_at_095() {
        // Fig 1b/1c.
        let m = QoeModel::default();
        let v = video(VideoId::Bbb);
        let median_tol = |level: QualityLevel, target: f64| {
            let mut t: Vec<usize> = v
                .segments
                .iter()
                .map(|s| m.max_droppable_frames(s, level, target))
                .collect();
            t.sort_unstable();
            t[t.len() / 2]
        };
        let q12_99 = median_tol(QualityLevel::MAX, 0.99);
        let q9_99 = median_tol(QualityLevel(9), 0.99);
        let q9_95 = median_tol(QualityLevel(9), 0.95);
        assert!(q9_99 < q12_99, "q9/0.99 {q9_99} vs q12/0.99 {q12_99}");
        assert!(q9_95 > q9_99, "q9/0.95 {q9_95} vs q9/0.99 {q9_99}");
    }

    #[test]
    fn drop_order_starts_with_unreferenced_frames() {
        let v = video(VideoId::Bbb);
        let seg = &v.segments[0];
        let order = drop_order(seg);
        assert_eq!(order.len(), FRAMES_PER_SEGMENT - 1, "I-frame excluded");
        // The first quarter of the drop order should be dominated by
        // unreferenced bs (they harm nothing downstream).
        let head = &order[..order.len() / 4];
        let unref = head
            .iter()
            .filter(|&&f| seg.gop.frames[f].kind == crate::gop::FrameKind::BUnref)
            .count();
        assert!(
            unref as f64 / head.len() as f64 > 0.7,
            "unref fraction {}",
            unref as f64 / head.len() as f64
        );
    }

    #[test]
    fn vmaf_and_psnr_are_monotone_in_distortion() {
        let mut prev_v = f64::INFINITY;
        let mut prev_p = f64::INFINITY;
        for i in 0..100 {
            let d = i as f64 / 100.0;
            let v = QoeModel::vmaf_from_distortion(d);
            let p = QoeModel::psnr_from_distortion(d);
            assert!(v <= prev_v);
            assert!(p <= prev_p);
            prev_v = v;
            prev_p = p;
        }
        assert_eq!(QoeModel::vmaf_from_distortion(0.0), 100.0);
    }

    #[test]
    fn loss_map_accessors() {
        let mut m = LossMap::none();
        assert!(m.is_clean());
        m.set(5, 0.4);
        m.add(5, 0.3);
        assert!((m.get(5) - 0.7).abs() < 1e-12);
        m.add(5, 0.9);
        assert_eq!(m.get(5), 1.0);
        assert_eq!(m.full_drops(), 1);
        assert!(!m.is_clean());
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use crate::content::VideoId;
    use crate::video::Video;
    use proptest::prelude::*;

    proptest! {
        /// The invariant VOXEL's whole decision space rests on: delivering
        /// MORE of a frame never lowers the segment score.
        #[test]
        fn qoe_is_monotone_in_delivery(
            seg_idx in 0usize..75,
            frame in 1usize..FRAMES_PER_SEGMENT,
            base_losses in proptest::collection::vec((1usize..FRAMES_PER_SEGMENT, 0.0f64..=1.0), 0..20),
            frac_a in 0.0f64..=1.0,
            frac_b in 0.0f64..=1.0,
        ) {
            let video = Video::generate(VideoId::Bbb);
            let model = QoeModel::default();
            let seg = &video.segments[seg_idx];
            let (lo, hi) = if frac_a <= frac_b { (frac_a, frac_b) } else { (frac_b, frac_a) };
            let mut less_lost = LossMap::none();
            let mut more_lost = LossMap::none();
            for (f, frac) in &base_losses {
                less_lost.set(*f, *frac);
                more_lost.set(*f, *frac);
            }
            less_lost.set(frame, lo);
            more_lost.set(frame, hi);
            let s_less = model.eval(seg, QualityLevel::MAX, &less_lost);
            let s_more = model.eval(seg, QualityLevel::MAX, &more_lost);
            prop_assert!(s_less.ssim + 1e-9 >= s_more.ssim,
                "losing more of frame {frame} ({lo} -> {hi}) raised SSIM {} -> {}",
                s_more.ssim, s_less.ssim);
            prop_assert!(s_less.vmaf + 1e-6 >= s_more.vmaf);
            prop_assert!(s_less.psnr_db + 1e-6 >= s_more.psnr_db);
        }

        /// Scores always stay in their metric's range.
        #[test]
        fn scores_stay_in_range(
            seg_idx in 0usize..75,
            level in 0usize..13,
            losses in proptest::collection::vec((0usize..FRAMES_PER_SEGMENT, 0.0f64..=1.0), 0..96),
        ) {
            let video = Video::generate(VideoId::Sintel);
            let model = QoeModel::default();
            let seg = &video.segments[seg_idx];
            let mut map = LossMap::none();
            for (f, frac) in losses {
                map.set(f, frac);
            }
            let s = model.eval(seg, QualityLevel::try_from(level).unwrap(), &map);
            prop_assert!((0.0..=1.0).contains(&s.ssim));
            prop_assert!((0.0..=100.0).contains(&s.vmaf));
            prop_assert!(s.psnr_db.is_finite());
        }
    }
}
