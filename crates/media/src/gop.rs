//! GOP structure and the H.264 reference DAG.
//!
//! Each 4 s segment at 24 fps holds 96 frames (§3: "a 4 s segment at 24 fps
//! has 96 frames"). The synthetic GOP uses one I-frame at position 0 and a
//! period-3 sub-GOP with a one-level B-pyramid:
//!
//! ```text
//! position:   0   1   2   3   4   5   6  ...  93  94  95
//! kind:       I   B   b   P   B   b   P  ...   P   B   b
//! ```
//!
//! - `P` at positions 3k references the previous anchor (P or I).
//! - `B` at 3k+1 references the surrounding anchors and **is referenced by**
//!   the following `b` (a *referenced* B-frame).
//! - `b` at 3k+2 references the neighbouring `B` and the next anchor and is
//!   referenced by nothing (an *unreferenced* B-frame — the only kind BETA
//!   may drop).
//!
//! This yields 1 I / 31 P / 32 B / 32 b per segment — >30 % P-frames, as the
//! paper reports for its encodes — and byte shares of ≈15 % I / 65 % P /
//! 20 % B (§5 "Videos"), modulated per segment by motion.

/// Frames per 4-second segment at 24 fps.
pub const FRAMES_PER_SEGMENT: usize = 96;

/// H.264 frame type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Intra-coded: no references; always delivered reliably by VOXEL.
    I,
    /// Predicted: references the previous anchor frame.
    P,
    /// Bi-directional, *referenced* by other B-frames (part of the pyramid).
    BRef,
    /// Bi-directional, unreferenced (droppable even by BETA).
    BUnref,
}

impl FrameKind {
    /// True for I and P frames ("anchor" frames other frames predict from).
    pub fn is_anchor(self) -> bool {
        matches!(self, FrameKind::I | FrameKind::P)
    }

    /// True for any B-frame (referenced or not).
    pub fn is_b(self) -> bool {
        matches!(self, FrameKind::BRef | FrameKind::BUnref)
    }
}

/// Static metadata of one frame within a segment.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameMeta {
    /// Presentation position within the segment, `0..FRAMES_PER_SEGMENT`.
    pub index: usize,
    /// Frame type.
    pub kind: FrameKind,
    /// Presentation indices of frames this frame directly references.
    pub refs: Vec<usize>,
    /// Motion/complexity of this frame in `[0, 1]`: how much it differs from
    /// its temporal neighbours. Drives frame size and concealment error.
    pub motion: f64,
    /// Fraction of the segment's bytes occupied by this frame (sums to 1).
    pub size_weight: f64,
}

/// The reference structure of one segment.
#[derive(Debug, Clone, PartialEq)]
pub struct GopStructure {
    /// Frames in presentation order.
    pub frames: Vec<FrameMeta>,
    /// For each frame, the frames that directly reference it.
    pub dependents: Vec<Vec<usize>>,
    /// Frame indices in decode (= file/byte) order: each anchor precedes the
    /// B-frames that reference it. This is ordering ① ("original order") of
    /// §4.1.
    pub decode_order: Vec<usize>,
}

impl GopStructure {
    /// Build the GOP for one segment.
    ///
    /// `motions[i]` is the per-frame motion in `[0,1]`; `i_share` the
    /// fraction of segment bytes in the I-frame (remaining bytes split
    /// between P and B in the 65:20 ratio of the paper's encodes).
    pub fn build(motions: &[f64], i_share: f64) -> GopStructure {
        assert_eq!(motions.len(), FRAMES_PER_SEGMENT, "need 96 motion samples");
        assert!((0.0..1.0).contains(&i_share));

        let n = FRAMES_PER_SEGMENT;
        let mut frames: Vec<FrameMeta> = Vec::with_capacity(n);

        // Kinds and direct references.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let (kind, refs) = if i == 0 {
                (FrameKind::I, Vec::new())
            } else if i % 3 == 0 {
                // P references previous anchor.
                (FrameKind::P, vec![i - 3])
            } else if i % 3 == 1 {
                // Referenced B: previous anchor and next anchor (if present).
                let prev_anchor = i - 1;
                let mut r = vec![prev_anchor];
                if i + 2 < n {
                    r.push(i + 2);
                }
                (FrameKind::BRef, r)
            } else {
                // Unreferenced b: the neighbouring B and the next anchor.
                let mut r = vec![i - 1];
                if i + 1 < n {
                    r.push(i + 1);
                }
                (FrameKind::BUnref, r)
            };
            frames.push(FrameMeta {
                index: i,
                kind,
                refs,
                motion: motions[i].clamp(0.0, 1.0),
                size_weight: 0.0,
            });
        }

        // Byte-share model: distribute i_share to the I-frame, and the rest
        // to P and B in the paper's 65:20 ratio, modulated by motion
        // (high-motion frames encode more residual).
        let rest = 1.0 - i_share;
        let p_total = rest * 65.0 / 85.0;
        let b_total = rest * 20.0 / 85.0;
        let modulate = |m: f64| 0.5 + 1.0 * m;

        let p_raw: f64 = frames
            .iter()
            .filter(|f| f.kind == FrameKind::P)
            .map(|f| modulate(f.motion))
            .sum();
        let b_raw: f64 = frames
            .iter()
            .filter(|f| f.kind.is_b())
            .map(|f| {
                // Referenced Bs carry roughly twice the bytes of unreferenced
                // bs (they encode the mid-point of the pyramid).
                let scale = if f.kind == FrameKind::BRef { 1.5 } else { 1.0 };
                scale * modulate(f.motion)
            })
            .sum();

        for f in frames.iter_mut() {
            f.size_weight = match f.kind {
                FrameKind::I => i_share,
                FrameKind::P => p_total * modulate(f.motion) / p_raw,
                FrameKind::BRef => b_total * 1.5 * modulate(f.motion) / b_raw,
                FrameKind::BUnref => b_total * modulate(f.motion) / b_raw,
            };
        }

        // Reverse edges.
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for f in &frames {
            for &r in &f.refs {
                dependents[r].push(f.index);
            }
        }

        // Decode order: anchors first within each sub-GOP, then B, then b.
        // I, P3, B1, b2, P6, B4, b5, ...
        let mut pushed = vec![false; n];
        let mut decode_order = Vec::with_capacity(n);
        let mut push = |order: &mut Vec<usize>, i: usize| {
            if !pushed[i] {
                pushed[i] = true;
                order.push(i);
            }
        };
        push(&mut decode_order, 0);
        let mut k = 3;
        while k < n {
            push(&mut decode_order, k);
            push(&mut decode_order, k - 2);
            push(&mut decode_order, k - 1);
            k += 3;
        }
        // Trailing frames after the final anchor (positions 94, 95).
        for i in 0..n {
            push(&mut decode_order, i);
        }
        debug_assert_eq!(decode_order.len(), n);

        GopStructure {
            frames,
            dependents,
            decode_order,
        }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the GOP is empty (never true for built GOPs).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// All frames that transitively reference `frame` — i.e. every frame
    /// whose decode is impaired if `frame` is lost.
    pub fn transitive_dependents(&self, frame: usize) -> Vec<usize> {
        let mut seen = vec![false; self.frames.len()];
        let mut stack = vec![frame];
        let mut out = Vec::new();
        while let Some(f) = stack.pop() {
            for &d in &self.dependents[f] {
                if !seen[d] {
                    seen[d] = true;
                    out.push(d);
                    stack.push(d);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The *inbound reference rank* of §4.1 ordering ③: the number of direct
    /// and transitive inbound references, weighted by the referencing
    /// frames' byte sizes (a cheap stand-in for "macroblocks referenced").
    pub fn inbound_rank(&self, frame: usize) -> f64 {
        self.transitive_dependents(frame)
            .iter()
            .map(|&d| self.frames[d].size_weight)
            .sum::<f64>()
    }

    /// Count of frames by kind `(i, p, b_ref, b_unref)`.
    pub fn kind_counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for f in &self.frames {
            match f.kind {
                FrameKind::I => c.0 += 1,
                FrameKind::P => c.1 += 1,
                FrameKind::BRef => c.2 += 1,
                FrameKind::BUnref => c.3 += 1,
            }
        }
        c
    }

    /// Byte share by kind `(i, p, b)` (sums to ≈1).
    pub fn byte_shares(&self) -> (f64, f64, f64) {
        let mut s = (0.0, 0.0, 0.0);
        for f in &self.frames {
            match f.kind {
                FrameKind::I => s.0 += f.size_weight,
                FrameKind::P => s.1 += f.size_weight,
                _ => s.2 += f.size_weight,
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_gop() -> GopStructure {
        GopStructure::build(&[0.3; FRAMES_PER_SEGMENT], 0.15)
    }

    #[test]
    fn kind_counts_match_design() {
        let g = flat_gop();
        let (i, p, bref, bunref) = g.kind_counts();
        assert_eq!(i, 1);
        assert_eq!(p, 31);
        assert_eq!(bref, 32);
        assert_eq!(bunref, 32);
        assert_eq!(i + p + bref + bunref, FRAMES_PER_SEGMENT);
        // Paper: videos contain more than 30% P-frames.
        assert!(p as f64 / FRAMES_PER_SEGMENT as f64 > 0.30);
    }

    #[test]
    fn byte_shares_match_paper() {
        let g = flat_gop();
        let (i, p, b) = g.byte_shares();
        assert!((i - 0.15).abs() < 1e-9, "I share {i}");
        assert!((p - 0.65).abs() < 0.01, "P share {p}");
        assert!((b - 0.20).abs() < 0.01, "B share {b}");
        assert!((i + p + b - 1.0).abs() < 1e-9);
        // Paper (§6): P-frames constitute at least 56% of video data.
        assert!(p > 0.56);
    }

    #[test]
    fn size_weights_sum_to_one() {
        let g = GopStructure::build(
            &(0..FRAMES_PER_SEGMENT)
                .map(|i| (i as f64 / 95.0).clamp(0.0, 1.0))
                .collect::<Vec<_>>(),
            0.25,
        );
        let total: f64 = g.frames.iter().map(|f| f.size_weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(g.frames.iter().all(|f| f.size_weight > 0.0));
    }

    #[test]
    fn i_frame_has_no_refs_and_many_dependents() {
        let g = flat_gop();
        assert!(g.frames[0].refs.is_empty());
        // Everything transitively depends on the I-frame.
        assert_eq!(g.transitive_dependents(0).len(), FRAMES_PER_SEGMENT - 1);
    }

    #[test]
    fn unreferenced_b_has_no_dependents() {
        let g = flat_gop();
        for f in &g.frames {
            if f.kind == FrameKind::BUnref {
                assert!(g.dependents[f.index].is_empty(), "frame {}", f.index);
                assert!(g.transitive_dependents(f.index).is_empty());
            }
        }
    }

    #[test]
    fn referenced_b_is_referenced_by_its_b_neighbour() {
        let g = flat_gop();
        // Frame 1 (BRef) is referenced by frame 2 (BUnref).
        assert_eq!(g.frames[1].kind, FrameKind::BRef);
        assert!(g.dependents[1].contains(&2));
    }

    #[test]
    fn p_chain_dependencies_decay_toward_tail() {
        let g = flat_gop();
        // An early P (frame 3) has strictly more transitive dependents than a
        // late P (frame 93): losing it hurts more. This is the basis of the
        // inbound-reference ordering.
        let early = g.transitive_dependents(3).len();
        let late = g.transitive_dependents(93).len();
        assert!(early > late, "early {early} late {late}");
        assert!(g.inbound_rank(3) > g.inbound_rank(93));
    }

    #[test]
    fn refs_are_valid_indices_and_acyclic() {
        let g = flat_gop();
        for f in &g.frames {
            for &r in &f.refs {
                assert!(r < g.len());
                assert_ne!(r, f.index);
            }
            // A frame's transitive dependents never include itself (DAG).
            assert!(!g.transitive_dependents(f.index).contains(&f.index));
        }
    }

    #[test]
    fn decode_order_is_a_permutation_with_anchors_first() {
        let g = flat_gop();
        let mut sorted = g.decode_order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..FRAMES_PER_SEGMENT).collect::<Vec<_>>());
        // Every frame's backward anchor reference appears before it in
        // decode order.
        let pos: Vec<usize> = {
            let mut p = vec![0; g.len()];
            for (di, &f) in g.decode_order.iter().enumerate() {
                p[f] = di;
            }
            p
        };
        for f in &g.frames {
            for &r in &f.refs {
                if r < f.index {
                    assert!(pos[r] < pos[f.index], "frame {} ref {}", f.index, r);
                }
            }
        }
    }

    #[test]
    fn high_motion_frames_are_larger() {
        let mut motions = [0.1; FRAMES_PER_SEGMENT];
        motions[6] = 0.9; // a P-frame
        let g = GopStructure::build(&motions, 0.15);
        // Compare with another P-frame at low motion.
        assert!(g.frames[6].size_weight > g.frames[9].size_weight * 2.0);
    }
}
