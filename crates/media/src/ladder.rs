//! The 13-level bitrate ladder of Table 2.
//!
//! Levels are based on common 16:9 resolutions with bitrates combined from
//! the YouTube and Netflix bitrate ladders, exactly as the paper encodes its
//! videos: Q0 at 0.16 Mbps (144 p) through Q12 at 10 Mbps (2160 p).

/// Index of a quality level, `0..=12` (Q0 lowest … Q12 highest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QualityLevel(pub u8);

/// Number of quality levels in the ladder.
pub const NUM_LEVELS: usize = 13;

/// One rung of the bitrate ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderRung {
    /// Vertical resolution, e.g. `2160` for 4K.
    pub resolution_p: u32,
    /// Average encoded bitrate in Mbps (Table 2).
    pub avg_bitrate_mbps: f64,
    /// Total size of the paper's 5-minute clip at this level, in MB (Table 2).
    pub total_size_mb: f64,
}

/// Table 2 of the paper: quality levels of the encoded videos.
pub const BITRATE_LADDER: [LadderRung; NUM_LEVELS] = [
    LadderRung {
        resolution_p: 144,
        avg_bitrate_mbps: 0.16,
        total_size_mb: 5.8,
    },
    LadderRung {
        resolution_p: 240,
        avg_bitrate_mbps: 0.23,
        total_size_mb: 8.5,
    },
    LadderRung {
        resolution_p: 240,
        avg_bitrate_mbps: 0.37,
        total_size_mb: 14.0,
    },
    LadderRung {
        resolution_p: 360,
        avg_bitrate_mbps: 0.56,
        total_size_mb: 21.0,
    },
    LadderRung {
        resolution_p: 360,
        avg_bitrate_mbps: 0.75,
        total_size_mb: 27.0,
    },
    LadderRung {
        resolution_p: 480,
        avg_bitrate_mbps: 1.05,
        total_size_mb: 38.0,
    },
    LadderRung {
        resolution_p: 480,
        avg_bitrate_mbps: 1.75,
        total_size_mb: 63.0,
    },
    LadderRung {
        resolution_p: 720,
        avg_bitrate_mbps: 2.35,
        total_size_mb: 84.0,
    },
    LadderRung {
        resolution_p: 720,
        avg_bitrate_mbps: 3.0,
        total_size_mb: 108.0,
    },
    LadderRung {
        resolution_p: 1080,
        avg_bitrate_mbps: 4.3,
        total_size_mb: 154.0,
    },
    LadderRung {
        resolution_p: 1080,
        avg_bitrate_mbps: 5.8,
        total_size_mb: 207.0,
    },
    LadderRung {
        resolution_p: 1440,
        avg_bitrate_mbps: 7.4,
        total_size_mb: 264.0,
    },
    LadderRung {
        resolution_p: 2160,
        avg_bitrate_mbps: 10.0,
        total_size_mb: 357.0,
    },
];

impl QualityLevel {
    /// Lowest quality, Q0.
    pub const MIN: QualityLevel = QualityLevel(0);
    /// Highest quality, Q12.
    pub const MAX: QualityLevel = QualityLevel((NUM_LEVELS - 1) as u8);

    /// The ladder rung for this level.
    pub fn rung(self) -> &'static LadderRung {
        &BITRATE_LADDER[self.0 as usize]
    }

    /// Average bitrate in bits per second.
    pub fn avg_bitrate_bps(self) -> f64 {
        self.rung().avg_bitrate_mbps * 1e6
    }

    /// Average bitrate in Mbps.
    pub fn avg_bitrate_mbps(self) -> f64 {
        self.rung().avg_bitrate_mbps
    }

    /// Index as `usize` for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The next level down, or `None` at Q0.
    pub fn lower(self) -> Option<QualityLevel> {
        (self.0 > 0).then(|| QualityLevel(self.0 - 1))
    }

    /// The next level up, or `None` at Q12.
    pub fn higher(self) -> Option<QualityLevel> {
        (self.index() + 1 < NUM_LEVELS).then(|| QualityLevel(self.0 + 1))
    }

    /// Iterate over all levels, Q0..=Q12.
    pub fn all() -> impl DoubleEndedIterator<Item = QualityLevel> {
        (0..NUM_LEVELS as u8).map(QualityLevel)
    }
}

impl std::fmt::Display for QualityLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

impl TryFrom<usize> for QualityLevel {
    type Error = &'static str;
    fn try_from(v: usize) -> Result<Self, Self::Error> {
        if v < NUM_LEVELS {
            Ok(QualityLevel(v as u8))
        } else {
            Err("quality level out of range (0..=12)")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_matches_table_2_endpoints() {
        assert_eq!(QualityLevel(0).avg_bitrate_mbps(), 0.16);
        assert_eq!(QualityLevel(12).avg_bitrate_mbps(), 10.0);
        assert_eq!(QualityLevel(12).rung().resolution_p, 2160);
        assert_eq!(QualityLevel(9).avg_bitrate_mbps(), 4.3);
    }

    #[test]
    fn bitrates_strictly_increase() {
        for w in BITRATE_LADDER.windows(2) {
            assert!(w[0].avg_bitrate_mbps < w[1].avg_bitrate_mbps);
            assert!(w[0].total_size_mb < w[1].total_size_mb);
            assert!(w[0].resolution_p <= w[1].resolution_p);
        }
    }

    #[test]
    fn lower_higher_navigation() {
        assert_eq!(QualityLevel::MIN.lower(), None);
        assert_eq!(QualityLevel::MAX.higher(), None);
        assert_eq!(QualityLevel(5).lower(), Some(QualityLevel(4)));
        assert_eq!(QualityLevel(5).higher(), Some(QualityLevel(6)));
    }

    #[test]
    fn all_iterates_thirteen_levels() {
        let v: Vec<_> = QualityLevel::all().collect();
        assert_eq!(v.len(), NUM_LEVELS);
        assert_eq!(v[0], QualityLevel::MIN);
        assert_eq!(*v.last().unwrap(), QualityLevel::MAX);
    }

    #[test]
    fn try_from_bounds() {
        assert!(QualityLevel::try_from(12).is_ok());
        assert!(QualityLevel::try_from(13).is_err());
    }

    #[test]
    fn total_sizes_roughly_match_bitrate_times_duration() {
        // Table 2's total sizes are for ~5-minute clips; check the ladder is
        // self-consistent within a factor of ~1.6 (VBR + container overhead).
        for rung in &BITRATE_LADDER {
            let expected_mb = rung.avg_bitrate_mbps * 300.0 / 8.0;
            let ratio = rung.total_size_mb / expected_mb;
            assert!((0.6..=1.7).contains(&ratio), "rung {rung:?} ratio {ratio}");
        }
    }
}
