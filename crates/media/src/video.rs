//! Synthetic video generation: 75 × 4 s segments × 13 quality levels.
//!
//! Mirrors the paper's evaluation clips (§5 "Videos" / §A): five-minute
//! sections of each video, transcoded as "2× capped" VBR at the Table 2
//! ladder. Segment sizes vary with content (Fig 15) with per-video standard
//! deviations from Tables 1 & 3; the same relative variation is applied at
//! every level, as capped-VBR encodes exhibit.

use crate::content::{ContentProfile, VideoId};
use crate::gop::{GopStructure, FRAMES_PER_SEGMENT};
use crate::ladder::{QualityLevel, NUM_LEVELS};
use voxel_sim::SimRng;

/// Segments per evaluation clip (5 minutes of 4 s segments).
pub const SEGMENTS_PER_VIDEO: usize = 75;

/// Segment duration in seconds.
pub const SEGMENT_DURATION_S: f64 = 4.0;

/// One 4-second segment across all 13 quality levels.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Segment index within the clip, `0..SEGMENTS_PER_VIDEO`.
    pub index: usize,
    /// The GOP / reference structure (identical across levels).
    pub gop: GopStructure,
    /// Total encoded bytes at each quality level.
    pub total_bytes: [u64; NUM_LEVELS],
    /// Per-level, per-frame byte sizes (`frame_bytes[level][frame]`);
    /// each level's row sums exactly to `total_bytes[level]`.
    frame_bytes: Vec<Vec<u64>>,
    /// Whether this is a near-static scene (title card / still shot).
    pub is_static: bool,
    /// Whether the segment opens with a scene cut.
    pub has_cut: bool,
    /// Mean motion of the segment in `[0,1]`.
    pub mean_motion: f64,
    /// Rate–distortion complexity multiplier used by the QoE model.
    pub complexity: f64,
}

impl Segment {
    /// Encoded bytes of frame `frame` at `level`.
    pub fn frame_bytes(&self, level: QualityLevel, frame: usize) -> u64 {
        self.frame_bytes[level.index()][frame]
    }

    /// All frame sizes at `level`, in presentation order.
    pub fn frame_sizes(&self, level: QualityLevel) -> &[u64] {
        &self.frame_bytes[level.index()]
    }

    /// Total segment size in bytes at `level`.
    pub fn bytes(&self, level: QualityLevel) -> u64 {
        self.total_bytes[level.index()]
    }

    /// The *segment bitrate* in Mbps at `level` — the bandwidth required to
    /// stream this particular segment (the paper plots these, not the
    /// video-wide average; see Fig 15).
    pub fn bitrate_mbps(&self, level: QualityLevel) -> f64 {
        self.bytes(level) as f64 * 8.0 / SEGMENT_DURATION_S / 1e6
    }
}

/// A complete synthetic video clip.
#[derive(Debug, Clone)]
pub struct Video {
    /// Which video this is.
    pub id: VideoId,
    /// The content profile it was generated from.
    pub profile: ContentProfile,
    /// The 75 segments.
    pub segments: Vec<Segment>,
}

impl Video {
    /// Deterministically generate the clip for `id` (same `id` ⇒ identical
    /// video, bit for bit, across runs and platforms).
    pub fn generate(id: VideoId) -> Video {
        let profile = id.profile();
        let mut rng = SimRng::derive(id.seed(), "video-gen");
        let segments = (0..SEGMENTS_PER_VIDEO)
            .map(|i| Self::generate_segment(&profile, i, &mut rng))
            .collect();
        Video {
            id,
            profile,
            segments,
        }
    }

    fn generate_segment(profile: &ContentProfile, index: usize, rng: &mut SimRng) -> Segment {
        let is_static = rng.chance(profile.static_scene_prob);
        let has_cut = !is_static && rng.chance(profile.cut_rate);

        // Per-segment mean motion.
        let mean_motion = if is_static {
            rng.uniform_range(0.01, 0.06)
        } else {
            rng.normal_ms(profile.motion_mean, profile.motion_spread)
                .clamp(0.02, 1.0)
        };

        // Per-frame motion: AR(1) around the segment mean; a cut spikes the
        // first few frames (new scene content).
        let rho = 0.85;
        let mut motions = Vec::with_capacity(FRAMES_PER_SEGMENT);
        let mut m = mean_motion;
        for i in 0..FRAMES_PER_SEGMENT {
            let jitter = rng.normal() * profile.motion_jitter;
            m = mean_motion + rho * (m - mean_motion) + jitter;
            let mut mi = m.clamp(0.005, 1.0);
            if has_cut && i < 3 {
                mi = (mi + 0.5).min(1.0);
            }
            motions.push(mi);
        }

        // I-frame byte share: larger for static/cut segments, smaller for
        // high-motion ones (residual data dominates there).
        let mut i_share = (0.15 + 0.30 * (0.25 - mean_motion)).clamp(0.06, 0.50);
        if has_cut {
            i_share = (i_share + 0.08).min(0.55);
        }
        if is_static {
            i_share = (i_share + 0.15).min(0.60);
        }

        let gop = GopStructure::build(&motions, i_share);

        // Capped-VBR multiplier: correlated with motion, matching the
        // per-video stddev of Tables 1/3, capped at 2x the average (and
        // floored at 0.3x) as in the paper's "2x capped" encodes.
        let rel_std = profile.relative_std();
        let motion_z = if profile.motion_spread > 1e-6 {
            ((mean_motion - profile.motion_mean) / profile.motion_spread).clamp(-2.5, 2.5)
        } else {
            0.0
        };
        let z = 0.6 * motion_z + 0.8 * rng.normal();
        let mult = (1.0 + rel_std * z).clamp(0.3, 2.0);

        // RD complexity for the QoE model: how hard this segment is to
        // encode at a given bitrate.
        let complexity = (0.55 + 1.3 * mean_motion + 0.25 * rng.normal().abs()).clamp(0.3, 2.5);

        let mut total_bytes = [0u64; NUM_LEVELS];
        let mut frame_bytes = Vec::with_capacity(NUM_LEVELS);
        for level in QualityLevel::all() {
            let total = (level.avg_bitrate_bps() * SEGMENT_DURATION_S / 8.0 * mult).round() as u64;
            total_bytes[level.index()] = total;

            // Distribute by weight with exact total: round each, dump the
            // residual on the I-frame.
            let mut row: Vec<u64> = gop
                .frames
                .iter()
                .map(|f| (f.size_weight * total as f64).floor() as u64)
                .collect();
            let assigned: u64 = row.iter().sum();
            row[0] += total - assigned;
            frame_bytes.push(row);
        }

        Segment {
            index,
            gop,
            total_bytes,
            frame_bytes,
            is_static,
            has_cut,
            mean_motion,
            complexity,
        }
    }

    /// Clip duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.segments.len() as f64 * SEGMENT_DURATION_S
    }

    /// Mean segment bitrate at `level` in Mbps.
    pub fn avg_bitrate_mbps(&self, level: QualityLevel) -> f64 {
        self.segments
            .iter()
            .map(|s| s.bitrate_mbps(level))
            .sum::<f64>()
            / self.segments.len() as f64
    }

    /// Standard deviation of per-segment bitrate at `level` in Mbps
    /// (the Tables 1/3 statistic when `level` = Q12).
    pub fn bitrate_std_mbps(&self, level: QualityLevel) -> f64 {
        let rates: Vec<f64> = self
            .segments
            .iter()
            .map(|s| s.bitrate_mbps(level))
            .collect();
        voxel_sim::stats::std_dev(&rates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Video::generate(VideoId::Bbb);
        let b = Video::generate(VideoId::Bbb);
        assert_eq!(a.segments.len(), SEGMENTS_PER_VIDEO);
        for (sa, sb) in a.segments.iter().zip(&b.segments) {
            assert_eq!(sa.total_bytes, sb.total_bytes);
            assert_eq!(sa.mean_motion, sb.mean_motion);
        }
    }

    #[test]
    fn different_videos_differ() {
        let a = Video::generate(VideoId::Bbb);
        let b = Video::generate(VideoId::Sintel);
        assert_ne!(a.segments[0].total_bytes, b.segments[0].total_bytes);
    }

    #[test]
    fn frame_bytes_sum_to_total() {
        let v = Video::generate(VideoId::Tos);
        for seg in &v.segments {
            for level in QualityLevel::all() {
                let sum: u64 = seg.frame_sizes(level).iter().sum();
                assert_eq!(sum, seg.bytes(level), "seg {} {level}", seg.index);
            }
        }
    }

    #[test]
    fn average_bitrate_tracks_ladder() {
        let v = Video::generate(VideoId::Bbb);
        for level in QualityLevel::all() {
            let avg = v.avg_bitrate_mbps(level);
            let target = level.avg_bitrate_mbps();
            assert!(
                (avg / target - 1.0).abs() < 0.25,
                "{level}: avg {avg} vs target {target}"
            );
        }
    }

    #[test]
    fn vbr_is_capped_at_2x() {
        for id in VideoId::all() {
            let v = Video::generate(id);
            for seg in &v.segments {
                let ratio =
                    seg.bitrate_mbps(QualityLevel::MAX) / QualityLevel::MAX.avg_bitrate_mbps();
                assert!(ratio <= 2.0 + 1e-9, "{id} seg {} ratio {ratio}", seg.index);
                assert!(ratio >= 0.3 - 1e-9);
            }
        }
    }

    #[test]
    fn bitrate_std_matches_table_1_order() {
        // Sintel (7.5) must vary more than ToS (3.52) at Q12, and the
        // generated stds should be within ~40% of the table values.
        let sintel = Video::generate(VideoId::Sintel);
        let tos = Video::generate(VideoId::Tos);
        let ss = sintel.bitrate_std_mbps(QualityLevel::MAX);
        let ts = tos.bitrate_std_mbps(QualityLevel::MAX);
        assert!(ss > ts, "sintel {ss} vs tos {ts}");
        assert!((ss / 7.5 - 1.0).abs() < 0.4, "sintel std {ss}");
        assert!((ts / 3.52 - 1.0).abs() < 0.4, "tos std {ts}");
    }

    #[test]
    fn p10_has_no_static_segments() {
        let v = Video::generate(VideoId::YouTube(10));
        assert!(v.segments.iter().all(|s| !s.is_static));
        assert!(v.segments.iter().all(|s| s.mean_motion > 0.5));
    }

    #[test]
    fn p9_is_mostly_static_low_motion() {
        let v = Video::generate(VideoId::YouTube(9));
        let static_frac =
            v.segments.iter().filter(|s| s.is_static).count() as f64 / v.segments.len() as f64;
        assert!(static_frac > 0.25, "static fraction {static_frac}");
        let avg_motion: f64 =
            v.segments.iter().map(|s| s.mean_motion).sum::<f64>() / v.segments.len() as f64;
        assert!(avg_motion < 0.12, "avg motion {avg_motion}");
    }

    #[test]
    fn duration_is_five_minutes() {
        let v = Video::generate(VideoId::Ed);
        assert_eq!(v.duration_s(), 300.0);
    }

    #[test]
    fn segment_bitrates_vary_across_segments() {
        // Fig 15: segments exhibit vastly different bitrates.
        let v = Video::generate(VideoId::Sintel);
        let rates: Vec<f64> = v
            .segments
            .iter()
            .map(|s| s.bitrate_mbps(QualityLevel::MAX))
            .collect();
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = rates.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max / min > 2.0, "min {min} max {max}");
    }
}
