#![warn(missing_docs)]
//! # voxel-media
//!
//! Synthetic video model replacing the paper's real videos + FFmpeg pipeline.
//!
//! Every algorithm in VOXEL consumes exactly three things from a video:
//!
//! 1. **frame sizes** per segment and quality level,
//! 2. the **H.264 reference DAG** between frames (I/P/B, direct and
//!    transitive references), and
//! 3. **QoE as a function of which frames (or parts of frames) are lost**.
//!
//! This crate synthesizes all three with the statistics the paper reports:
//! the 13-level bitrate ladder of Table 2, per-video capped-VBR segment-size
//! variation matching Tables 1 & 3 (Fig 15), a GOP structure yielding
//! ≈15 % I / 65 % P / 20 % B bytes with >30 % P-frames (§5 "Videos"), and an
//! analytic SSIM/VMAF/PSNR model whose frame-drop tolerance reproduces the
//! shapes of Figs 1, 2 and 19.
//!
//! See `DESIGN.md` §2 for the substitution rationale.

pub mod content;
pub mod gop;
pub mod ladder;
pub mod qoe;
pub mod video;

pub use content::{ContentProfile, VideoId};
pub use gop::{FrameKind, FrameMeta, GopStructure, FRAMES_PER_SEGMENT};
pub use ladder::{QualityLevel, BITRATE_LADDER, NUM_LEVELS};
pub use qoe::{LossMap, QoeMetric, QoeModel, QoeScores};
pub use video::{Segment, Video, SEGMENTS_PER_VIDEO, SEGMENT_DURATION_S};
