//! Parsing the extended manifest's wire format.
//!
//! A VOXEL-aware client receives the manifest as text (Listing 1) and needs
//! the per-entry attributes back: `mediaRange`, `reliableSize`, the
//! `ssims` triplets, and the chosen ordering. This module parses the
//! serialization [`crate::manifest::Manifest::to_mpd`] produces — the
//! deployable half of the §4.1 "size vs. compatibility tradeoff" (only the
//! manifest changes; video files stay untouched). A VOXEL-unaware client
//! would ignore every attribute except `mediaRange`, which is exactly what
//! [`ParsedEntry::media_range`] alone supports.

use crate::analysis::QoePoint;

/// One parsed `<SegmentURL …/>` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedEntry {
    /// Segment index.
    pub segment: usize,
    /// Quality level index (0..=12).
    pub level: usize,
    /// Byte range of the segment within the video file (inclusive).
    pub media_range: (u64, u64),
    /// Name of the chosen ordering.
    pub ordering: String,
    /// Bytes requiring reliable delivery.
    pub reliable_size: u64,
    /// The bytes→QoE triplets.
    pub ssims: Vec<QoePoint>,
}

/// A parsed manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedMpd {
    /// The video's short name.
    pub video: String,
    /// Declared segment count.
    pub segments: usize,
    /// All entries, in document order.
    pub entries: Vec<ParsedEntry>,
}

/// Serialize a parsed manifest back to the Listing 1 wire format.
///
/// Exact inverse of [`parse`]: `parse(&serialize(&m)) == Some(m)` for any
/// `ParsedMpd` whose strings avoid `"` and whose `ssims` values are exact
/// at the printed 3-decimal precision (as every analysed manifest's are).
/// Matches [`crate::manifest::Manifest::to_mpd`] byte for byte, so a relay
/// can re-emit a manifest it only ever saw as text.
pub fn serialize(mpd: &ParsedMpd) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "<MPD video=\"{}\" segments=\"{}\">\n",
        mpd.video, mpd.segments
    ));
    for e in &mpd.entries {
        let ssims: Vec<String> = e
            .ssims
            .iter()
            .map(|p| format!("{:.3}:{}:{}", p.ssim, p.frames, p.bytes))
            .collect();
        out.push_str(&format!(
            "<SegmentURL seg=\"{}\" q=\"{}\" mediaRange=\"{}-{}\" ordering=\"{}\" \
             reliableSize=\"{}\" ssims=\"{}\"/>\n",
            e.segment,
            e.level,
            e.media_range.0,
            e.media_range.1,
            e.ordering,
            e.reliable_size,
            ssims.join(",")
        ));
    }
    out.push_str("</MPD>\n");
    out
}

/// Extract `name="value"` from an XML-ish attribute list.
fn attr<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let pat = format!("{name}=\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

/// Parse the output of `Manifest::to_mpd`; `None` on malformed input.
pub fn parse(text: &str) -> Option<ParsedMpd> {
    let mut lines = text.lines();
    let head = lines.next()?;
    if !head.starts_with("<MPD") {
        return None;
    }
    let video = attr(head, "video")?.to_string();
    let segments: usize = attr(head, "segments")?.parse().ok()?;
    let mut entries = Vec::new();
    for line in lines {
        let line = line.trim();
        if line == "</MPD>" {
            break;
        }
        if !line.starts_with("<SegmentURL") {
            return None;
        }
        let (start, end) = attr(line, "mediaRange")?.split_once('-')?;
        let ssims = attr(line, "ssims")?
            .split(',')
            .map(|t| {
                let mut parts = t.split(':');
                Some(QoePoint {
                    ssim: parts.next()?.parse().ok()?,
                    frames: parts.next()?.parse().ok()?,
                    bytes: parts.next()?.parse().ok()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        entries.push(ParsedEntry {
            segment: attr(line, "seg")?.parse().ok()?,
            level: attr(line, "q")?.parse().ok()?,
            media_range: (start.parse().ok()?, end.parse().ok()?),
            ordering: attr(line, "ordering")?.to_string(),
            reliable_size: attr(line, "reliableSize")?.parse().ok()?,
            ssims,
        });
    }
    Some(ParsedMpd {
        video,
        segments,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;
    use voxel_media::content::VideoId;
    use voxel_media::ladder::QualityLevel;
    use voxel_media::qoe::QoeModel;
    use voxel_media::video::Video;

    fn manifest() -> Manifest {
        let video = Video::generate(VideoId::Tos);
        Manifest::prepare_levels(&video, &QoeModel::default(), &[QualityLevel::MAX])
    }

    #[test]
    fn roundtrips_the_serialized_manifest() {
        let m = manifest();
        let parsed = parse(&m.to_mpd()).expect("parses");
        assert_eq!(parsed.video, "ToS");
        assert_eq!(parsed.segments, m.num_segments());
        assert_eq!(parsed.entries.len(), m.num_segments() * 13);
        // Spot-check a fully analysed entry against the source.
        let src = m.entry(5, QualityLevel::MAX);
        let got = parsed
            .entries
            .iter()
            .find(|e| e.segment == 5 && e.level == 12)
            .expect("present");
        assert_eq!(got.media_range, src.media_range);
        assert_eq!(got.reliable_size, src.reliable_size);
        assert_eq!(got.ssims.len(), src.ssims.len());
        assert_eq!(got.ordering, src.ordering.to_string());
        // Triplets round-trip within the printed precision.
        for (a, b) in got.ssims.iter().zip(&src.ssims) {
            assert!((a.ssim - b.ssim).abs() < 5e-4);
            assert_eq!(a.frames, b.frames);
            assert_eq!(a.bytes, b.bytes);
        }
    }

    #[test]
    fn parsed_ssims_stay_usable_for_decisions() {
        let m = manifest();
        let parsed = parse(&m.to_mpd()).expect("parses");
        let e = parsed
            .entries
            .iter()
            .find(|e| e.segment == 0 && e.level == 12)
            .expect("present");
        // Monotone in bytes, so a client can binary-search budgets.
        for w in e.ssims.windows(2) {
            assert!(w[0].bytes < w[1].bytes);
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_none());
        assert!(parse("<NotMpd>").is_none());
        assert!(parse("<MPD video=\"x\" segments=\"1\">\ngarbage\n</MPD>").is_none());
        assert!(parse("<MPD video=\"x\" segments=\"nope\">\n</MPD>").is_none());
        // Truncated ssims triplet.
        let bad = "<MPD video=\"x\" segments=\"1\">\n<SegmentURL seg=\"0\" q=\"0\" mediaRange=\"0-9\" ordering=\"original\" reliableSize=\"5\" ssims=\"0.9:4\"/>\n</MPD>";
        assert!(parse(bad).is_none());
    }

    #[test]
    fn serialize_is_byte_identical_to_manifest_output() {
        // parse → serialize reproduces Manifest::to_mpd byte for byte: a
        // relay that only ever saw the text can re-emit it unchanged.
        let text = manifest().to_mpd();
        let parsed = parse(&text).expect("parses");
        assert_eq!(serialize(&parsed), text);
    }

    #[test]
    fn attr_extraction() {
        let line = r#"<SegmentURL seg="3" q="12" mediaRange="10-99"/>"#;
        assert_eq!(attr(line, "seg"), Some("3"));
        assert_eq!(attr(line, "mediaRange"), Some("10-99"));
        assert_eq!(attr(line, "missing"), None);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// parse→serialize→parse is the identity on arbitrary documents
        /// (and serialize→parse→serialize is byte-stable). SSIMs are
        /// generated on the 1/1000 grid so the printed 3-decimal form is
        /// exact; every analysed manifest satisfies the same property once
        /// it has been through one print.
        #[test]
        fn parse_serialize_parse_is_identity(
            video in "[A-Za-z][A-Za-z0-9]{0,7}",
            segments in 0usize..500,
            raw in proptest::collection::vec(
                (
                    0usize..120,
                    0usize..13,
                    (0u64..1_000_000, 0u64..1_000_000),
                    "[a-z][a-z-]{0,11}",
                    0u64..500_000,
                    proptest::collection::vec(
                        (0u32..=1000, 0usize..600, 0u64..5_000_000),
                        1..6,
                    ),
                ),
                0..12,
            ),
        ) {
            let entries: Vec<ParsedEntry> = raw
                .into_iter()
                .map(|(segment, level, (a, b), ordering, reliable_size, pts)| ParsedEntry {
                    segment,
                    level,
                    media_range: (a.min(b), a.max(b)),
                    ordering,
                    reliable_size,
                    ssims: pts
                        .into_iter()
                        .map(|(milli, frames, bytes)| QoePoint {
                            ssim: f64::from(milli) / 1000.0,
                            frames,
                            bytes,
                        })
                        .collect(),
                })
                .collect();
            let doc = ParsedMpd { video, segments, entries };
            let text = serialize(&doc);
            let back = parse(&text).expect("serializer output parses");
            prop_assert_eq!(&back, &doc);
            prop_assert_eq!(serialize(&back), text);
        }
    }
}
