//! The three candidate frame orderings of §4.1.
//!
//! An ordering is the sequence in which a client downloads a segment's
//! frames. If the download is cut short, the frames at the *tail* of the
//! ordering are the ones lost — so a good ordering puts the least important
//! frames last. The I-frame always comes first (it is never dropped and is
//! always delivered reliably).

use voxel_media::gop::FrameKind;
use voxel_media::video::Segment;

/// Which of the §4.1 orderings to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderingKind {
    /// ① Original (encoder/decode) order.
    Original,
    /// ② Unreferenced frames grouped at the segment tail — BETA's approach.
    UnreferencedTail,
    /// ③ Rank by direct + transitive inbound references (VOXEL's ordering).
    InboundRank,
}

impl OrderingKind {
    /// All three candidates, in the order the paper presents them.
    pub const ALL: [OrderingKind; 3] = [
        OrderingKind::Original,
        OrderingKind::UnreferencedTail,
        OrderingKind::InboundRank,
    ];
}

impl std::fmt::Display for OrderingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OrderingKind::Original => "original",
            OrderingKind::UnreferencedTail => "unreferenced-tail",
            OrderingKind::InboundRank => "inbound-rank",
        };
        write!(f, "{s}")
    }
}

/// The download order of a segment's frames under `kind`.
///
/// Returns presentation-frame indices; element 0 is always the I-frame.
pub fn frame_order(seg: &Segment, kind: OrderingKind) -> Vec<usize> {
    let gop = &seg.gop;
    match kind {
        OrderingKind::Original => gop.decode_order.clone(),
        OrderingKind::UnreferencedTail => {
            // Keep decode order, but move frames with no inbound references
            // to the end (still in decode order among themselves). Errors in
            // those tail frames affect nothing else.
            let (head, tail): (Vec<usize>, Vec<usize>) =
                gop.decode_order.iter().copied().partition(|&f| {
                    !gop.dependents[f].is_empty() || gop.frames[f].kind == FrameKind::I
                });
            head.into_iter().chain(tail).collect()
        }
        OrderingKind::InboundRank => {
            // I-frame first, then frames by decreasing harm (the shared
            // ranking in voxel-media): most important downloaded first.
            let mut order = vec![0usize];
            let mut by_harm = voxel_media::qoe::drop_order(seg);
            by_harm.reverse();
            order.extend(by_harm);
            order
        }
    }
}

/// Given a download order and a count of frames actually delivered from its
/// head, the set of frame indices that were dropped (the tail).
pub fn dropped_tail(order: &[usize], delivered: usize) -> &[usize] {
    &order[delivered.min(order.len())..]
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxel_media::content::VideoId;
    use voxel_media::gop::FRAMES_PER_SEGMENT;
    use voxel_media::video::Video;

    fn seg() -> Segment {
        Video::generate(VideoId::Bbb).segments[2].clone()
    }

    fn assert_permutation(order: &[usize]) {
        let mut v = order.to_vec();
        v.sort_unstable();
        assert_eq!(v, (0..FRAMES_PER_SEGMENT).collect::<Vec<_>>());
    }

    #[test]
    fn all_orderings_are_permutations_starting_with_i() {
        let s = seg();
        for kind in OrderingKind::ALL {
            let order = frame_order(&s, kind);
            assert_permutation(&order);
            assert_eq!(order[0], 0, "{kind}: I-frame must come first");
        }
    }

    #[test]
    fn unreferenced_tail_groups_unreferenced_last() {
        let s = seg();
        let order = frame_order(&s, OrderingKind::UnreferencedTail);
        // Find the first unreferenced frame in the order; everything after
        // must also be unreferenced.
        let first_unref = order
            .iter()
            .position(|&f| s.gop.dependents[f].is_empty())
            .expect("segment has unreferenced frames");
        for &f in &order[first_unref..] {
            assert!(
                s.gop.dependents[f].is_empty(),
                "frame {f} after the unreferenced boundary has dependents"
            );
        }
        // And the head contains none.
        for &f in &order[..first_unref] {
            assert!(!s.gop.dependents[f].is_empty() || f == 0);
        }
    }

    #[test]
    fn inbound_rank_puts_high_rank_frames_early() {
        let s = seg();
        let order = frame_order(&s, OrderingKind::InboundRank);
        // The average inbound rank of the first third must exceed that of
        // the last third.
        let third = order.len() / 3;
        let rank_avg =
            |fs: &[usize]| fs.iter().map(|&f| s.gop.inbound_rank(f)).sum::<f64>() / fs.len() as f64;
        assert!(rank_avg(&order[..third]) > rank_avg(&order[order.len() - third..]));
    }

    #[test]
    fn dropped_tail_slices_correctly() {
        let order = vec![0, 3, 1, 2, 4];
        assert_eq!(dropped_tail(&order, 3), &[2, 4]);
        assert_eq!(dropped_tail(&order, 5), &[] as &[usize]);
        assert_eq!(dropped_tail(&order, 99), &[] as &[usize]);
        assert_eq!(dropped_tail(&order, 0).len(), 5);
    }

    #[test]
    fn orderings_differ_from_each_other() {
        let s = seg();
        let o1 = frame_order(&s, OrderingKind::Original);
        let o2 = frame_order(&s, OrderingKind::UnreferencedTail);
        let o3 = frame_order(&s, OrderingKind::InboundRank);
        assert_ne!(o1, o2);
        assert_ne!(o2, o3);
        assert_ne!(o1, o3);
    }
}
