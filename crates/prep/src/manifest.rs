//! The extended DASH manifest (§4.1, Listing 1).
//!
//! VOXEL never modifies video files; it only enriches the manifest with
//! frame-level detail per segment and quality level:
//!
//! - `mediaRange`: the segment's byte range in the (unmodified) video file,
//! - `reliable`: byte ranges that must be delivered reliably — the I-frame
//!   plus *all* frame headers (keeping headers intact lets the decoder cope
//!   with holes in frame bodies, §4.2),
//! - `unreliable`: the remaining byte ranges listed **in download order**
//!   under the chosen ordering,
//! - `ssims`: the bytes→QoE triplets `score:frames:bytes`.
//!
//! VOXEL-unaware clients ignore the extra attributes and fetch segments
//! whole, in original order — backward compatibility comes for free.

use crate::analysis::{analyze_segment_forced, QoePoint};
use crate::ordering::frame_order;
use crate::ordering::OrderingKind;
use voxel_media::ladder::{QualityLevel, NUM_LEVELS};
use voxel_media::qoe::QoeModel;
use voxel_media::video::Video;
use voxel_media::VideoId;

/// Bytes per frame header (NAL/slice header kept intact for decodability).
pub const FRAME_HEADER_BYTES: u64 = 24;

/// A byte range `[start, end]` (inclusive, like HTTP ranges).
pub type ByteRange = (u64, u64);

/// One `<SegmentURL>` entry of the extended manifest.
#[derive(Debug, Clone)]
pub struct SegmentEntry {
    /// Segment index within the clip.
    pub segment: usize,
    /// Quality level of this representation.
    pub level: QualityLevel,
    /// Byte range of the whole segment within the video file.
    pub media_range: ByteRange,
    /// The bytes→QoE mapping (`ssims` attribute), increasing in frames.
    pub ssims: Vec<QoePoint>,
    /// The ordering the analysis selected for this segment/level.
    pub ordering: OrderingKind,
    /// Frame indices in download order (element 0 is the I-frame).
    pub download_order: Vec<usize>,
    /// BETA's map: the bytes→QoE points under the unreferenced-tail
    /// ordering (used only by the BETA baseline).
    pub beta_ssims: Vec<QoePoint>,
    /// BETA's download order (unreferenced-tail).
    pub beta_order: Vec<usize>,
    /// Total bytes that must go over a reliable stream (I-frame + headers).
    pub reliable_size: u64,
    /// SSIM of the complete (pristine) segment at this level.
    pub pristine_ssim: f64,
    /// QoE lower bound from the next-lower level (§4.1).
    pub bound: f64,
    /// Bytes required (per `ssims`) to reach `bound`.
    pub min_bytes: u64,
}

impl SegmentEntry {
    /// Total segment size: payloads + per-frame headers.
    pub fn total_bytes(&self) -> u64 {
        self.media_range.1 - self.media_range.0 + 1
    }

    /// Unreliable payload bytes (everything but the reliable prefix).
    pub fn unreliable_bytes(&self) -> u64 {
        self.total_bytes() - self.reliable_size
    }

    /// Best achievable QoE point within a *payload* byte budget (`bytes`
    /// fields of [`QoePoint`] count payloads only).
    pub fn best_within(&self, payload_budget: u64) -> Option<QoePoint> {
        self.ssims
            .iter()
            .rev()
            .find(|p| p.bytes <= payload_budget)
            .copied()
    }

    /// Cheapest QoE point reaching `target` SSIM.
    pub fn cheapest_reaching(&self, target: f64) -> Option<QoePoint> {
        self.ssims.iter().find(|p| p.ssim >= target).copied()
    }

    /// The point delivered when the first `frames` frames of the download
    /// order arrive.
    pub fn point_at_frames(&self, frames: usize) -> QoePoint {
        let idx = frames.clamp(1, self.ssims.len()) - 1;
        self.ssims[idx]
    }
}

/// The extended manifest for one video: all segments × all 13 levels.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Which video this manifest describes.
    pub video_id: VideoId,
    /// `entries[segment][level]`.
    pub entries: Vec<Vec<SegmentEntry>>,
}

impl Manifest {
    /// Run the full offline preparation (§4.1) for `video`.
    ///
    /// This is the paper's one-time, server-side computation — it reports a
    /// cost of up to 5× the encoding cost; here it is a few hundred
    /// milliseconds per video and the result is reused across experiments.
    pub fn prepare(video: &Video, model: &QoeModel) -> Manifest {
        Self::prepare_levels(video, model, &QualityLevel::all().collect::<Vec<_>>())
    }

    /// Prepare with the §4.1 ordering selection overridden to `kind` for
    /// every segment — the runtime ordering ablation.
    pub fn prepare_forced(
        video: &Video,
        model: &QoeModel,
        levels: &[QualityLevel],
        kind: OrderingKind,
    ) -> Manifest {
        Self::prepare_inner(video, model, levels, Some(kind))
    }

    /// Prepare only the given `levels` (others get placeholder analyses
    /// reusing the full-segment point). Useful for tests; experiments use
    /// [`Manifest::prepare`].
    pub fn prepare_levels(video: &Video, model: &QoeModel, levels: &[QualityLevel]) -> Manifest {
        Self::prepare_inner(video, model, levels, None)
    }

    fn prepare_inner(
        video: &Video,
        model: &QoeModel,
        levels: &[QualityLevel],
        force: Option<OrderingKind>,
    ) -> Manifest {
        let mut entries = Vec::with_capacity(video.segments.len());
        // Per-level running offset within the (per-level) video file.
        let mut offsets = [0u64; NUM_LEVELS];
        for seg in &video.segments {
            let mut row = Vec::with_capacity(NUM_LEVELS);
            for level in QualityLevel::all() {
                let header_total = FRAME_HEADER_BYTES * seg.gop.len() as u64;
                let total = seg.bytes(level) + header_total;
                let media_range = (offsets[level.index()], offsets[level.index()] + total - 1);
                offsets[level.index()] += total;

                let entry = if levels.contains(&level) {
                    let analysis = analyze_segment_forced(model, seg, level, force);
                    let order = frame_order(seg, analysis.best.ordering);
                    let beta_order = frame_order(seg, OrderingKind::UnreferencedTail);
                    let reliable_size = seg.frame_bytes(level, 0) + header_total;
                    SegmentEntry {
                        segment: seg.index,
                        level,
                        media_range,
                        ssims: analysis.best.points.clone(),
                        ordering: analysis.best.ordering,
                        download_order: order,
                        beta_ssims: analysis.tail.points.clone(),
                        beta_order,
                        reliable_size,
                        pristine_ssim: model.pristine_ssim(seg, level),
                        bound: analysis.bound,
                        min_bytes: analysis.min_bytes,
                    }
                } else {
                    // Placeholder: full-segment-only entry (no virtual levels).
                    let pristine = model.pristine_ssim(seg, level);
                    SegmentEntry {
                        segment: seg.index,
                        level,
                        media_range,
                        ssims: vec![QoePoint {
                            ssim: pristine,
                            frames: seg.gop.len(),
                            bytes: seg.bytes(level),
                        }],
                        ordering: OrderingKind::Original,
                        download_order: seg.gop.decode_order.clone(),
                        beta_ssims: vec![QoePoint {
                            ssim: pristine,
                            frames: seg.gop.len(),
                            bytes: seg.bytes(level),
                        }],
                        beta_order: seg.gop.decode_order.clone(),
                        reliable_size: seg.frame_bytes(level, 0) + header_total,
                        pristine_ssim: pristine,
                        bound: pristine,
                        min_bytes: seg.bytes(level),
                    }
                };
                row.push(entry);
            }
            entries.push(row);
        }
        Manifest {
            video_id: video.id,
            entries,
        }
    }

    /// The entry for `segment` at `level`.
    pub fn entry(&self, segment: usize, level: QualityLevel) -> &SegmentEntry {
        &self.entries[segment][level.index()]
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.entries.len()
    }

    /// Serialize in the Listing 1 style (one `<SegmentURL …/>` per entry).
    ///
    /// Like the paper's proof-of-concept, this is a naïve, unoptimized text
    /// encoding — its size relative to a Q12 segment (≈16 % in the paper)
    /// is reported by [`Manifest::size_bytes`].
    pub fn to_mpd(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "<MPD video=\"{}\" segments=\"{}\">\n",
            self.video_id,
            self.num_segments()
        ));
        for row in &self.entries {
            for e in row {
                let ssims: Vec<String> = e
                    .ssims
                    .iter()
                    .map(|p| format!("{:.3}:{}:{}", p.ssim, p.frames, p.bytes))
                    .collect();
                out.push_str(&format!(
                    "<SegmentURL seg=\"{}\" q=\"{}\" mediaRange=\"{}-{}\" ordering=\"{}\" \
                     reliableSize=\"{}\" ssims=\"{}\"/>\n",
                    e.segment,
                    e.level.index(),
                    e.media_range.0,
                    e.media_range.1,
                    e.ordering,
                    e.reliable_size,
                    ssims.join(",")
                ));
            }
        }
        out.push_str("</MPD>\n");
        out
    }

    /// Size of the serialized manifest in bytes.
    pub fn size_bytes(&self) -> usize {
        self.to_mpd().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxel_media::video::Video;

    fn quick_manifest() -> (Video, Manifest) {
        let video = Video::generate(VideoId::Tos);
        let model = QoeModel::default();
        let m = Manifest::prepare_levels(&video, &model, &[QualityLevel::MAX, QualityLevel(9)]);
        (video, m)
    }

    #[test]
    fn entries_cover_all_segments_and_levels() {
        let (video, m) = quick_manifest();
        assert_eq!(m.num_segments(), video.segments.len());
        for row in &m.entries {
            assert_eq!(row.len(), NUM_LEVELS);
        }
    }

    #[test]
    fn media_ranges_are_contiguous_per_level() {
        let (_, m) = quick_manifest();
        for level in QualityLevel::all() {
            let mut expected_start = 0u64;
            for seg in 0..m.num_segments() {
                let e = m.entry(seg, level);
                assert_eq!(e.media_range.0, expected_start);
                assert!(e.media_range.1 > e.media_range.0);
                expected_start = e.media_range.1 + 1;
            }
        }
    }

    #[test]
    fn total_bytes_includes_headers() {
        let (video, m) = quick_manifest();
        let e = m.entry(0, QualityLevel::MAX);
        let seg = &video.segments[0];
        assert_eq!(
            e.total_bytes(),
            seg.bytes(QualityLevel::MAX) + FRAME_HEADER_BYTES * seg.gop.len() as u64
        );
        assert!(e.reliable_size > FRAME_HEADER_BYTES * seg.gop.len() as u64);
        assert!(e.reliable_size < e.total_bytes());
    }

    #[test]
    fn prepared_level_has_virtual_points_placeholder_does_not() {
        let (_, m) = quick_manifest();
        assert!(m.entry(0, QualityLevel::MAX).ssims.len() > 1);
        assert_eq!(m.entry(0, QualityLevel(3)).ssims.len(), 1);
    }

    #[test]
    fn best_within_and_cheapest_reaching_are_consistent() {
        let (_, m) = quick_manifest();
        let e = m.entry(5, QualityLevel::MAX);
        let full = e.ssims.last().unwrap();
        let p = e.cheapest_reaching(e.bound).expect("bound is reachable");
        assert!(p.bytes <= full.bytes);
        let q = e.best_within(p.bytes).unwrap();
        assert!(q.ssim >= p.ssim - 1e-12);
        assert_eq!(e.point_at_frames(p.frames).frames, p.frames);
    }

    #[test]
    fn download_order_matches_ordering() {
        let (video, m) = quick_manifest();
        let e = m.entry(2, QualityLevel::MAX);
        let expected = frame_order(&video.segments[2], e.ordering);
        assert_eq!(e.download_order, expected);
        assert_eq!(e.download_order[0], 0);
    }

    #[test]
    fn mpd_serialization_contains_listing_1_attributes() {
        let (_, m) = quick_manifest();
        let mpd = m.to_mpd();
        assert!(mpd.contains("mediaRange="));
        assert!(mpd.contains("ssims="));
        assert!(mpd.contains("reliableSize="));
        assert!(mpd.starts_with("<MPD"));
        assert!(mpd.trim_end().ends_with("</MPD>"));
        assert!(m.size_bytes() == mpd.len());
    }

    #[test]
    fn manifest_overhead_is_moderate() {
        // The paper reports the enriched manifest at ~16% of an average Q12
        // segment *per segment entry*; sanity-check ours is within the same
        // order of magnitude (< 60%) for the fully prepared levels.
        let (video, m) = quick_manifest();
        let avg_q12: f64 = video
            .segments
            .iter()
            .map(|s| s.bytes(QualityLevel::MAX) as f64)
            .sum::<f64>()
            / video.segments.len() as f64;
        let per_entry = m.size_bytes() as f64 / (m.num_segments() as f64 * 2.0);
        assert!(
            per_entry / avg_q12 < 0.6,
            "per-entry overhead {:.1}% of a Q12 segment",
            100.0 * per_entry / avg_q12
        );
    }

    #[test]
    fn forced_ordering_is_respected() {
        let video = Video::generate(VideoId::Bbb);
        let model = QoeModel::default();
        for kind in OrderingKind::ALL {
            let m = Manifest::prepare_forced(&video, &model, &[QualityLevel::MAX], kind);
            for seg in [0usize, 17, 42] {
                assert_eq!(m.entry(seg, QualityLevel::MAX).ordering, kind);
            }
        }
        // Unforced preparation picks per-segment winners; at least one
        // segment must use the rank ordering (it dominates Fig 2b).
        let free = Manifest::prepare_levels(&video, &model, &[QualityLevel::MAX]);
        assert!((0..free.num_segments())
            .any(|s| free.entry(s, QualityLevel::MAX).ordering == OrderingKind::InboundRank));
    }

    #[test]
    fn min_bytes_never_exceeds_total_payload() {
        let (video, m) = quick_manifest();
        for seg in 0..m.num_segments() {
            let e = m.entry(seg, QualityLevel::MAX);
            assert!(e.min_bytes <= video.segments[seg].bytes(QualityLevel::MAX));
        }
    }
}
