#![warn(missing_docs)]
//! # voxel-prep
//!
//! VOXEL's offline, server-side content preparation (§4.1 of the paper).
//!
//! After transcoding (modelled by `voxel-media`), VOXEL adds a one-time
//! analysis phase per video:
//!
//! 1. [`ordering`]: build the three candidate frame orderings — ① original
//!    (encoder) order, ② unreferenced frames grouped at the tail (BETA's
//!    approach), ③ rank by direct + transitive inbound references.
//! 2. [`analysis`]: for each ordering, sweep tail-drops and map
//!    *bytes downloaded → QoE*; pick the ordering that reaches the QoE
//!    lower bound (the pristine score of the next-lower quality level) with
//!    the fewest bytes.
//! 3. [`manifest`]: emit the extended DASH manifest — `reliable` /
//!    `unreliable` byte ranges and the `ssims` triplets of Listing 1 —
//!    without modifying the video files themselves.

pub mod analysis;
pub mod manifest;
pub mod mpd;
pub mod ordering;

pub use analysis::{BytesQoeMap, QoePoint, SegmentAnalysis};
pub use manifest::{Manifest, SegmentEntry, FRAME_HEADER_BYTES};
pub use mpd::{parse as parse_mpd, ParsedMpd};
pub use ordering::OrderingKind;
