//! Drop-tolerance analysis: mapping bytes downloaded → QoE.
//!
//! "For each order, we estimate the implications of partial segments for
//! QoE … We iterate over the 'unimportant' (tail-end) frames in each segment
//! and calculate the QoEs as a function of number of dropped frames. The
//! process results in a mapping from the number of bytes downloaded … to QoE
//! scores." (§4.1)

use crate::ordering::{frame_order, OrderingKind};
use voxel_media::ladder::QualityLevel;
use voxel_media::qoe::{LossMap, QoeModel};
use voxel_media::video::Segment;

/// One point of the bytes→QoE mapping: the `ssims` attribute triplet of
/// Listing 1 — "(a) A QoE score, e.g., SSIM, and the number of (b) frames
/// and (c) bytes of the given segment that must be downloaded to achieve
/// that QoE score."
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QoePoint {
    /// Segment SSIM achieved when exactly `frames`/`bytes` are delivered.
    pub ssim: f64,
    /// Number of frames delivered (from the head of the ordering).
    pub frames: usize,
    /// Bytes delivered (frame payloads; headers are accounted separately).
    pub bytes: u64,
}

/// The full bytes→QoE mapping of one segment at one level under one ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct BytesQoeMap {
    /// The ordering this map was computed for.
    pub ordering: OrderingKind,
    /// Points in increasing `frames` (and `bytes`) order; the last point is
    /// the complete segment.
    pub points: Vec<QoePoint>,
}

impl BytesQoeMap {
    /// Compute the mapping by sweeping tail drops of `ordering`.
    pub fn compute(
        model: &QoeModel,
        seg: &Segment,
        level: QualityLevel,
        ordering: OrderingKind,
    ) -> BytesQoeMap {
        let order = frame_order(seg, ordering);
        let sizes = seg.frame_sizes(level);
        let n = order.len();

        // Start from everything dropped except the I-frame, and re-add
        // frames head-to-tail; evaluate after each addition. One eval per
        // prefix length.
        let mut points = Vec::with_capacity(n);
        let mut loss = LossMap::drop_frames(&order[1..]);
        let mut bytes = sizes[order[0]];
        points.push(QoePoint {
            ssim: model.eval(seg, level, &loss).ssim,
            frames: 1,
            bytes,
        });
        for (k, &f) in order.iter().enumerate().skip(1) {
            loss.set(f, 0.0);
            bytes += sizes[f];
            points.push(QoePoint {
                ssim: model.eval(seg, level, &loss).ssim,
                frames: k + 1,
                bytes,
            });
        }
        BytesQoeMap { ordering, points }
    }

    /// The smallest number of bytes whose delivery achieves `target` SSIM,
    /// with the point itself; `None` if even the full segment falls short.
    pub fn min_bytes_for(&self, target: f64) -> Option<QoePoint> {
        self.points.iter().copied().find(|p| p.ssim >= target)
    }

    /// The best SSIM achievable with at most `budget` payload bytes.
    pub fn best_ssim_within(&self, budget: u64) -> Option<QoePoint> {
        self.points
            .iter()
            .rev()
            .find(|p| p.bytes <= budget)
            .copied()
    }

    /// SSIM of the complete segment (last point).
    pub fn full_ssim(&self) -> f64 {
        // lint: allow(panic) analyze() always emits the full-segment point
        self.points.last().expect("map is never empty").ssim
    }

    /// Total payload bytes of the complete segment.
    pub fn full_bytes(&self) -> u64 {
        // lint: allow(panic) analyze() always emits the full-segment point
        self.points.last().expect("map is never empty").bytes
    }
}

/// Result of analysing one segment at one level: the chosen ordering and
/// its mapping, plus the QoE lower bound used for the choice.
#[derive(Debug, Clone)]
pub struct SegmentAnalysis {
    /// The winning ordering (minimal bytes to reach the bound).
    pub best: BytesQoeMap,
    /// The map under BETA's unreferenced-tail ordering, kept so the BETA
    /// baseline can be evaluated under *its* ordering rather than VOXEL's.
    pub tail: BytesQoeMap,
    /// The QoE lower bound: pristine SSIM of the next-lower quality level
    /// (or a fixed offset below this level's own pristine score at Q0).
    pub bound: f64,
    /// Bytes needed under the winning ordering to reach `bound`.
    pub min_bytes: u64,
    /// Frames needed under the winning ordering to reach `bound`.
    pub min_frames: usize,
}

/// The §4.1 "Finding the best among the three orderings" procedure.
///
/// For level `Qn`, the pristine score of `Q(n-1)` is the lower bound — "if
/// frame-drops lower the score below this bound, we simply fetch the segment
/// at quality Qn−1". At Q0 there is no lower level; we allow a small fixed
/// degradation below Q0's own pristine score instead.
pub fn analyze_segment(model: &QoeModel, seg: &Segment, level: QualityLevel) -> SegmentAnalysis {
    analyze_segment_forced(model, seg, level, None)
}

/// Like [`analyze_segment`], but with the ordering choice overridden — the
/// DESIGN.md §6 runtime ablation: stream with each candidate ordering and
/// measure the end-to-end difference the §4.1 selection makes.
pub fn analyze_segment_forced(
    model: &QoeModel,
    seg: &Segment,
    level: QualityLevel,
    force: Option<OrderingKind>,
) -> SegmentAnalysis {
    let bound = match level.lower() {
        Some(lower) => model.pristine_ssim(seg, lower),
        None => model.pristine_ssim(seg, level) - 0.02,
    };

    let mut best: Option<(u64, usize, BytesQoeMap)> = None;
    let mut tail: Option<BytesQoeMap> = None;
    for kind in OrderingKind::ALL {
        let map = BytesQoeMap::compute(model, seg, level, kind);
        if kind == OrderingKind::UnreferencedTail {
            tail = Some(map.clone());
        }
        // Bytes required to reach the bound under this ordering; if the
        // ordering can't reach it short of the full segment, the full
        // segment is the requirement.
        let (bytes, frames) = match map.min_bytes_for(bound) {
            Some(p) => (p.bytes, p.frames),
            None => (map.full_bytes(), map.points.len()),
        };
        let better = match force {
            Some(forced) => kind == forced,
            None => match &best {
                None => true,
                Some((b, _, _)) => bytes < *b,
            },
        };
        if better {
            best = Some((bytes, frames, map));
        }
    }
    // lint: allow(panic) the ordering loop above is over a non-empty const set
    let (min_bytes, min_frames, best) = best.expect("three orderings evaluated");
    SegmentAnalysis {
        best,
        // lint: allow(panic) the tail ordering is a member of the const set above
        tail: tail.expect("tail ordering evaluated"),
        bound,
        min_bytes,
        min_frames,
    }
}

/// Fig 2a helper: for each frame *position*, the fraction of segments in
/// which dropping the frame at that position alone keeps SSIM ≥ `target`.
pub fn droppable_by_position(
    model: &QoeModel,
    segments: &[Segment],
    level: QualityLevel,
    target: f64,
) -> Vec<f64> {
    let n = voxel_media::gop::FRAMES_PER_SEGMENT;
    let mut frac = vec![0.0f64; n];
    for seg in segments {
        #[allow(clippy::needless_range_loop)]
        for pos in 1..n {
            let loss = LossMap::drop_frames(&[pos]);
            if model.eval(seg, level, &loss).ssim >= target {
                frac[pos] += 1.0;
            }
        }
    }
    for f in frac.iter_mut() {
        *f /= segments.len() as f64;
    }
    frac
}

/// §3 insight-1 helper: maximum fraction of frames droppable from the tail
/// of `ordering` while keeping SSIM ≥ `target`.
pub fn drop_tolerance(
    model: &QoeModel,
    seg: &Segment,
    level: QualityLevel,
    ordering: OrderingKind,
    target: f64,
) -> f64 {
    let map = BytesQoeMap::compute(model, seg, level, ordering);
    // Find the smallest prefix reaching the target; tolerance is the tail.
    match map.min_bytes_for(target) {
        Some(p) => 1.0 - p.frames as f64 / map.points.len() as f64,
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxel_media::content::VideoId;
    use voxel_media::video::Video;

    fn setup() -> (QoeModel, Video) {
        (QoeModel::default(), Video::generate(VideoId::Bbb))
    }

    #[test]
    fn map_is_monotone_in_bytes_and_frames() {
        let (m, v) = setup();
        let map = BytesQoeMap::compute(
            &m,
            &v.segments[0],
            QualityLevel::MAX,
            OrderingKind::InboundRank,
        );
        assert_eq!(map.points.len(), voxel_media::gop::FRAMES_PER_SEGMENT);
        for w in map.points.windows(2) {
            assert!(w[0].frames < w[1].frames);
            assert!(w[0].bytes < w[1].bytes);
        }
    }

    #[test]
    fn inbound_rank_ssim_is_monotone_nondecreasing() {
        // Under the harm-sorted ordering, delivering more frames never hurts.
        let (m, v) = setup();
        let map = BytesQoeMap::compute(
            &m,
            &v.segments[7],
            QualityLevel::MAX,
            OrderingKind::InboundRank,
        );
        for w in map.points.windows(2) {
            assert!(
                w[1].ssim >= w[0].ssim - 1e-9,
                "ssim regressed: {} -> {}",
                w[0].ssim,
                w[1].ssim
            );
        }
    }

    #[test]
    fn full_delivery_matches_pristine() {
        let (m, v) = setup();
        let seg = &v.segments[3];
        for kind in OrderingKind::ALL {
            let map = BytesQoeMap::compute(&m, seg, QualityLevel(9), kind);
            let pristine = m.pristine_ssim(seg, QualityLevel(9));
            assert!((map.full_ssim() - pristine).abs() < 1e-9);
            assert_eq!(map.full_bytes(), seg.bytes(QualityLevel(9)));
        }
    }

    #[test]
    fn min_bytes_for_respects_target() {
        let (m, v) = setup();
        let map = BytesQoeMap::compute(
            &m,
            &v.segments[0],
            QualityLevel::MAX,
            OrderingKind::InboundRank,
        );
        let p = map.min_bytes_for(0.99).expect("Q12 can reach 0.99");
        assert!(p.ssim >= 0.99);
        assert!(p.bytes <= map.full_bytes());
        assert!(map.min_bytes_for(1.1).is_none());
    }

    #[test]
    fn best_ssim_within_budget() {
        let (m, v) = setup();
        let map = BytesQoeMap::compute(
            &m,
            &v.segments[0],
            QualityLevel::MAX,
            OrderingKind::InboundRank,
        );
        let full = map.full_bytes();
        let p = map
            .best_ssim_within(full / 2)
            .expect("half budget is above I-frame size");
        assert!(p.bytes <= full / 2);
        // A larger budget can only improve the achievable SSIM.
        let p2 = map.best_ssim_within(full).unwrap();
        assert!(p2.ssim >= p.ssim);
        // A budget below the I-frame size is infeasible.
        assert!(map.best_ssim_within(0).is_none());
    }

    #[test]
    fn inbound_rank_beats_tail_grouping_beats_original() {
        // Fig 2b: the rank ordering tolerates more drops than tail-only
        // grouping, which beats the original order. Compare mean tolerance
        // across segments at SSIM 0.99 / Q12.
        let (m, v) = setup();
        let mean_tol = |kind| {
            v.segments
                .iter()
                .map(|s| drop_tolerance(&m, s, QualityLevel::MAX, kind, 0.99))
                .sum::<f64>()
                / v.segments.len() as f64
        };
        let orig = mean_tol(OrderingKind::Original);
        let tail = mean_tol(OrderingKind::UnreferencedTail);
        let rank = mean_tol(OrderingKind::InboundRank);
        assert!(rank > tail, "rank {rank} <= tail {tail}");
        assert!(tail > orig, "tail {tail} <= orig {orig}");
    }

    #[test]
    fn analyze_segment_picks_cheapest_ordering() {
        let (m, v) = setup();
        let a = analyze_segment(&m, &v.segments[0], QualityLevel::MAX);
        // The winner must reach the bound with no more bytes than any
        // individual ordering.
        for kind in OrderingKind::ALL {
            let map = BytesQoeMap::compute(&m, &v.segments[0], QualityLevel::MAX, kind);
            let bytes = map
                .min_bytes_for(a.bound)
                .map(|p| p.bytes)
                .unwrap_or(map.full_bytes());
            assert!(a.min_bytes <= bytes, "{kind}: {} > {bytes}", a.min_bytes);
        }
        assert!(a.min_bytes <= v.segments[0].bytes(QualityLevel::MAX));
        assert!(a.min_frames >= 1);
    }

    #[test]
    fn bound_is_next_lower_pristine() {
        let (m, v) = setup();
        let seg = &v.segments[10];
        let a = analyze_segment(&m, seg, QualityLevel(9));
        assert!((a.bound - m.pristine_ssim(seg, QualityLevel(8))).abs() < 1e-12);
        // Q0 uses the fixed-offset fallback.
        let a0 = analyze_segment(&m, seg, QualityLevel::MIN);
        assert!((a0.bound - (m.pristine_ssim(seg, QualityLevel::MIN) - 0.02)).abs() < 1e-12);
    }

    #[test]
    fn virtual_level_saves_bytes_at_q12() {
        // Figs 2c/2d: Q12/0.99 sits between Q11 and Q12 in bitrate.
        let (m, v) = setup();
        let mut saved = 0usize;
        for seg in v.segments.iter() {
            let map = BytesQoeMap::compute(&m, seg, QualityLevel::MAX, OrderingKind::InboundRank);
            if let Some(p) = map.min_bytes_for(0.99) {
                if p.bytes < map.full_bytes() {
                    saved += 1;
                }
            }
        }
        // Most segments must offer some savings at SSIM 0.99.
        assert!(
            saved as f64 / v.segments.len() as f64 > 0.5,
            "saved {saved}/75"
        );
    }

    #[test]
    fn droppable_by_position_is_distributed() {
        // Fig 2a: droppable frames appear throughout the segment, and the
        // I-frame position is never droppable.
        let (m, v) = setup();
        let frac = droppable_by_position(&m, &v.segments[..20], QualityLevel::MAX, 0.99);
        assert_eq!(frac[0], 0.0);
        // Some droppable positions exist in each third of the segment.
        let n = frac.len();
        assert!(frac[1..n / 3].iter().any(|&f| f > 0.5));
        assert!(frac[n / 3..2 * n / 3].iter().any(|&f| f > 0.5));
        assert!(frac[2 * n / 3..].iter().any(|&f| f > 0.5));
    }
}
