//! Shared prepared-content cache and the edge serving cache.
//!
//! Two caches live here, one per tier of the serving topology:
//!
//! - [`ContentCache`]: the §4.1 offline preparation (ladder analysis +
//!   extended manifest) is one-time per video; every harness in the
//!   workspace — single-session experiments, the testkit's conformance
//!   runner, fleet runs with many concurrent sessions — shares the result.
//!   Cheaply cloneable (clones share storage) and safe to use from the
//!   work-stealing trial pool.
//! - [`EdgeCache`]: a byte-budgeted per-edge object cache for the fleet's
//!   edge serving tier (DESIGN.md §16). It caches the *responses* an edge
//!   serves — manifests, segment heads (VOXEL's reliable prefix), segment
//!   bodies (the unreliable tail) — under an LRU or LFU eviction policy
//!   and a byte-range-aware admission mode.
//!
//! Both are configured through one [`CacheConfig`], so orthogonal settings
//! compose: the testkit's top-level-only ladder restriction and an edge's
//! byte budget are independent fields, not baked-in constructor modes.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};
use voxel_media::content::VideoId;
use voxel_media::ladder::QualityLevel;
use voxel_media::qoe::QoeModel;
use voxel_media::video::Video;
use voxel_prep::manifest::Manifest;

/// What an edge cache admits, over VOXEL's reliable/unreliable split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Admission {
    /// Cache everything: manifests, heads, and full segment bodies.
    #[default]
    Full,
    /// Cache only the reliable prefix (manifests and heads). Body objects
    /// are never admitted *and never served* from cache — an edge in this
    /// mode cannot replay unreliable-tail bytes it was told not to keep.
    ReliablePrefix,
    /// Admit nothing (a pure pass-through edge; every request misses).
    None,
}

impl Admission {
    /// Stable spec-grammar name (`full` | `rel` | `none`).
    pub fn as_str(self) -> &'static str {
        match self {
            Admission::Full => "full",
            Admission::ReliablePrefix => "rel",
            Admission::None => "none",
        }
    }

    /// Inverse of [`Admission::as_str`].
    pub fn by_name(name: &str) -> Option<Admission> {
        Some(match name {
            "full" => Admission::Full,
            "rel" => Admission::ReliablePrefix,
            "none" => Admission::None,
            _ => return None,
        })
    }
}

/// Eviction policy of a byte-budgeted [`EdgeCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used object first.
    #[default]
    Lru,
    /// Evict the least-frequently-used object first (ties by recency).
    Lfu,
}

impl EvictionPolicy {
    /// Stable spec-grammar name (`lru` | `lfu`).
    pub fn as_str(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Lfu => "lfu",
        }
    }

    /// Inverse of [`EvictionPolicy::as_str`].
    pub fn by_name(name: &str) -> Option<EvictionPolicy> {
        Some(match name {
            "lru" => EvictionPolicy::Lru,
            "lfu" => EvictionPolicy::Lfu,
            _ => return None,
        })
    }
}

/// Cache configuration shared by both serving tiers. Every field is
/// orthogonal: a [`ContentCache`] reads `levels` (which ladder rungs the
/// offline prep analyzes), an [`EdgeCache`] reads `byte_budget`,
/// `eviction`, and `admission` — so a top-level-only content restriction
/// and an edge byte budget compose instead of fighting over one
/// constructor mode.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheConfig {
    /// `None` prepares the full ladder; `Some(levels)` restricts the §4.1
    /// analysis to those levels.
    pub levels: Option<Vec<QualityLevel>>,
    /// Edge byte budget; `None` is unbounded (no eviction).
    pub byte_budget: Option<u64>,
    /// Edge eviction policy once the budget is exceeded.
    pub eviction: EvictionPolicy,
    /// Edge admission mode over the reliable/unreliable ranges.
    pub admission: Admission,
}

impl CacheConfig {
    /// The testkit's ladder restriction: analyze only the top level.
    pub fn top_level_only() -> CacheConfig {
        CacheConfig {
            levels: Some(vec![QualityLevel::MAX]),
            ..CacheConfig::default()
        }
    }
}

struct Inner {
    entries: BTreeMap<VideoId, (Arc<Manifest>, Arc<Video>)>,
    qoe: QoeModel,
    config: CacheConfig,
}

/// Cache of prepared manifests, shareable across threads and harnesses.
/// Clones share the same storage.
#[derive(Clone)]
pub struct ContentCache {
    inner: Arc<Mutex<Inner>>,
}

impl Default for ContentCache {
    fn default() -> ContentCache {
        ContentCache::new()
    }
}

impl ContentCache {
    /// Empty cache with the given configuration (only `config.levels`
    /// affects offline preparation; the edge fields ride along so one
    /// config can describe a whole serving tier).
    pub fn with_config(config: CacheConfig) -> ContentCache {
        ContentCache {
            inner: Arc::new(Mutex::new(Inner {
                entries: BTreeMap::new(),
                qoe: QoeModel::default(),
                config,
            })),
        }
    }

    /// Empty cache preparing the full ladder with the default QoE model.
    pub fn new() -> ContentCache {
        ContentCache::with_config(CacheConfig::default())
    }

    /// Empty cache preparing only the top analyzed level (the testkit's
    /// mode: fast, and sufficient for every system in the legend).
    pub fn top_level_only() -> ContentCache {
        ContentCache::with_config(CacheConfig::top_level_only())
    }

    /// Empty cache preparing exactly `levels`.
    pub fn with_levels(levels: &[QualityLevel]) -> ContentCache {
        ContentCache::with_config(CacheConfig {
            levels: Some(levels.to_vec()),
            ..CacheConfig::default()
        })
    }

    /// The cache's configuration (a clone).
    pub fn config(&self) -> CacheConfig {
        self.lock().config.clone()
    }

    /// The QoE model used for preparation and scoring.
    pub fn qoe(&self) -> QoeModel {
        self.lock().qoe.clone()
    }

    /// Get (or prepare) a video + manifest.
    pub fn get(&self, id: VideoId) -> (Arc<Manifest>, Arc<Video>) {
        let mut inner = self.lock();
        let qoe = inner.qoe.clone();
        let levels = inner.config.levels.clone();
        inner
            .entries
            .entry(id)
            .or_insert_with(|| {
                let video = Video::generate(id);
                let manifest = Arc::new(match levels {
                    None => Manifest::prepare(&video, &qoe),
                    Some(levels) => Manifest::prepare_levels(&video, &qoe, &levels),
                });
                (manifest, Arc::new(video))
            })
            .clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// What kind of object an edge serves or caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObjectKind {
    /// The extended DASH manifest (reliable).
    Manifest,
    /// A segment head: the reliable prefix (I-frame + frame headers).
    Head,
    /// A segment body: the unreliable tail payloads.
    Body,
}

/// The identity of one cacheable object at an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ObjectKey {
    /// The video the object belongs to.
    pub video: VideoId,
    /// Segment index (0 for the manifest).
    pub seg: u32,
    /// Quality level index (0 for the manifest).
    pub level: u8,
    /// Object kind.
    pub kind: ObjectKind,
}

#[derive(Debug, Clone, Copy)]
struct EdgeEntry {
    bytes: u64,
    last_use: u64,
    freq: u64,
}

/// A byte-budgeted per-edge object cache (DESIGN.md §16).
///
/// Deterministic by construction: recency and frequency are logical
/// clocks advanced by cache operations, never wall time, and eviction
/// ties break on the object key — so a fleet run's cache behavior is a
/// pure function of its (partition-invariant) request order.
#[derive(Debug, Clone)]
pub struct EdgeCache {
    config: CacheConfig,
    entries: BTreeMap<ObjectKey, EdgeEntry>,
    used_bytes: u64,
    clock: u64,
    /// Requests answered from cache.
    pub hits: u64,
    /// Requests that had to go to the origin.
    pub misses: u64,
    /// Objects evicted to respect the byte budget.
    pub evictions: u64,
}

impl EdgeCache {
    /// An empty cache under `config`'s budget, policy, and admission.
    pub fn new(config: CacheConfig) -> EdgeCache {
        EdgeCache {
            config,
            entries: BTreeMap::new(),
            used_bytes: 0,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether this cache is allowed to *serve* `key` from storage.
    /// Reliable-prefix admission refuses to serve body (unreliable-tail)
    /// objects even if one were somehow present; no-cache admission
    /// serves nothing.
    fn serves(&self, key: &ObjectKey) -> bool {
        match self.config.admission {
            Admission::Full => true,
            Admission::ReliablePrefix => key.kind != ObjectKind::Body,
            Admission::None => false,
        }
    }

    /// Look up one request: `true` is a cache hit (recency/frequency are
    /// bumped), `false` sends the request to the origin.
    pub fn lookup(&mut self, key: ObjectKey) -> bool {
        self.clock += 1;
        if !self.serves(&key) {
            self.misses += 1;
            return false;
        }
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.last_use = self.clock;
                e.freq += 1;
                self.hits += 1;
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Offer an object fetched from the origin for admission. Admission
    /// mode and byte budget decide; eviction makes room under the policy.
    /// Objects larger than the whole budget are never admitted.
    pub fn admit(&mut self, key: ObjectKey, bytes: u64) {
        if !self.serves(&key) || self.entries.contains_key(&key) {
            return;
        }
        if let Some(budget) = self.config.byte_budget {
            if bytes > budget {
                return;
            }
            while self.used_bytes + bytes > budget {
                self.evict_one();
            }
        }
        self.clock += 1;
        self.entries.insert(
            key,
            EdgeEntry {
                bytes,
                last_use: self.clock,
                freq: 1,
            },
        );
        self.used_bytes += bytes;
    }

    /// Evict the policy's victim: least-recently-used (LRU) or
    /// least-frequently-used with recency ties (LFU); final ties break on
    /// the object key, keeping eviction deterministic.
    fn evict_one(&mut self) {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(k, e)| match self.config.eviction {
                EvictionPolicy::Lru => (e.last_use, 0, **k),
                EvictionPolicy::Lfu => (e.freq, e.last_use, **k),
            })
            .map(|(k, _)| *k);
        if let Some(k) = victim {
            if let Some(e) = self.entries.remove(&k) {
                self.used_bytes -= e.bytes;
                self.evictions += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_prepares_once_and_clones_share_storage() {
        let cache = ContentCache::new();
        let (m1, _) = cache.get(VideoId::YouTube(9));
        let clone = cache.clone();
        let (m2, _) = clone.get(VideoId::YouTube(9));
        assert!(Arc::ptr_eq(&m1, &m2));
    }

    #[test]
    fn top_level_only_restricts_the_ladder() {
        let full = ContentCache::new();
        let top = ContentCache::top_level_only();
        let (mf, _) = full.get(VideoId::Bbb);
        let (mt, _) = top.get(VideoId::Bbb);
        assert_eq!(mf.num_segments(), mt.num_segments());
        // Unanalyzed levels carry the placeholder single-point analysis.
        let bottom = QualityLevel::all().next().expect("ladder is non-empty");
        assert!(
            mt.entry(0, bottom).ssims.len() <= mf.entry(0, bottom).ssims.len(),
            "top-level-only cache analyzed the bottom level"
        );
        assert_eq!(
            mt.entry(0, QualityLevel::MAX).ssims.len(),
            mf.entry(0, QualityLevel::MAX).ssims.len(),
            "the top level is analyzed in both modes"
        );
    }

    #[test]
    fn cache_config_fields_are_orthogonal() {
        // A top-level-only ladder restriction and an edge byte budget can
        // ride in one config (the PR-10 fix: mode is no longer baked into
        // the constructor).
        let cfg = CacheConfig {
            byte_budget: Some(1 << 20),
            ..CacheConfig::top_level_only()
        };
        let content = ContentCache::with_config(cfg.clone());
        assert_eq!(content.config(), cfg);
        let edge = EdgeCache::new(cfg);
        assert_eq!(edge.config.byte_budget, Some(1 << 20));
        assert!(edge.config.levels.is_some());
    }

    fn key(seg: u32, kind: ObjectKind) -> ObjectKey {
        ObjectKey {
            video: VideoId::Bbb,
            seg,
            level: 12,
            kind,
        }
    }

    #[test]
    fn lru_evicts_in_recency_order() {
        let mut c = EdgeCache::new(CacheConfig {
            byte_budget: Some(300),
            ..CacheConfig::default()
        });
        for seg in 0..3 {
            c.admit(key(seg, ObjectKind::Head), 100);
        }
        // Touch 0 so 1 becomes the LRU victim.
        assert!(c.lookup(key(0, ObjectKind::Head)));
        c.admit(key(3, ObjectKind::Head), 100);
        assert_eq!(c.evictions, 1);
        assert!(!c.lookup(key(1, ObjectKind::Head)), "LRU victim survived");
        assert!(c.lookup(key(0, ObjectKind::Head)));
        assert!(c.lookup(key(2, ObjectKind::Head)));
        assert!(c.lookup(key(3, ObjectKind::Head)));
        assert_eq!(c.used_bytes(), 300);
    }

    #[test]
    fn lfu_evicts_in_frequency_order() {
        let mut c = EdgeCache::new(CacheConfig {
            byte_budget: Some(300),
            eviction: EvictionPolicy::Lfu,
            ..CacheConfig::default()
        });
        for seg in 0..3 {
            c.admit(key(seg, ObjectKind::Head), 100);
        }
        // 0 and 2 get extra hits; 1 stays at freq 1 and is the victim
        // even though it is *more* recently used than 0.
        assert!(c.lookup(key(0, ObjectKind::Head)));
        assert!(c.lookup(key(2, ObjectKind::Head)));
        assert!(c.lookup(key(1, ObjectKind::Head)));
        assert!(c.lookup(key(0, ObjectKind::Head)));
        assert!(c.lookup(key(2, ObjectKind::Head)));
        c.admit(key(3, ObjectKind::Head), 100);
        assert!(!c.lookup(key(1, ObjectKind::Head)), "LFU victim survived");
        assert!(c.lookup(key(0, ObjectKind::Head)));
        assert!(c.lookup(key(2, ObjectKind::Head)));
    }

    #[test]
    fn oversized_objects_and_budget_edges() {
        let mut c = EdgeCache::new(CacheConfig {
            byte_budget: Some(100),
            ..CacheConfig::default()
        });
        c.admit(key(0, ObjectKind::Head), 101);
        assert!(c.is_empty(), "over-budget object admitted");
        c.admit(key(1, ObjectKind::Head), 100);
        assert_eq!(c.used_bytes(), 100);
        // An exact-fit replacement evicts the incumbent.
        c.admit(key(2, ObjectKind::Head), 100);
        assert_eq!((c.len(), c.evictions), (1, 1));
        // Unbounded cache never evicts.
        let mut unbounded = EdgeCache::new(CacheConfig::default());
        for seg in 0..64 {
            unbounded.admit(key(seg, ObjectKind::Body), 1 << 20);
        }
        assert_eq!(unbounded.evictions, 0);
        assert_eq!(unbounded.len(), 64);
    }

    #[test]
    fn admission_none_serves_nothing() {
        let mut c = EdgeCache::new(CacheConfig {
            admission: Admission::None,
            ..CacheConfig::default()
        });
        c.admit(key(0, ObjectKind::Head), 10);
        assert!(c.is_empty());
        assert!(!c.lookup(key(0, ObjectKind::Head)));
        assert_eq!((c.hits, c.misses), (0, 1));
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    fn key(seg: u32, kind: ObjectKind) -> ObjectKey {
        ObjectKey {
            video: VideoId::Bbb,
            seg,
            level: 12,
            kind,
        }
    }

    proptest! {
        /// Reliable-prefix-only admission never serves unreliable-tail
        /// (body) bytes from cache: across any interleaving of admissions
        /// and lookups, every body lookup misses and no body object is
        /// ever stored.
        #[test]
        fn reliable_prefix_never_serves_body_bytes(
            ops in proptest::collection::vec(
                (0u32..8, 0usize..3, proptest::bool::ANY, 1u64..5000),
                1..200,
            ),
            budget in prop_oneof![Just(None), (500u64..20_000).prop_map(Some)],
        ) {
            let mut c = EdgeCache::new(CacheConfig {
                byte_budget: budget,
                admission: Admission::ReliablePrefix,
                ..CacheConfig::default()
            });
            for (seg, kind, is_admit, bytes) in ops {
                let kind = [ObjectKind::Manifest, ObjectKind::Head, ObjectKind::Body][kind];
                let k = key(seg, kind);
                if is_admit {
                    c.admit(k, bytes);
                } else {
                    let hit = c.lookup(k);
                    prop_assert!(
                        !(hit && kind == ObjectKind::Body),
                        "cache served unreliable-tail bytes for {k:?}"
                    );
                }
                prop_assert!(
                    c.entries.keys().all(|k| k.kind != ObjectKind::Body),
                    "a body object was admitted"
                );
                if let Some(b) = budget {
                    prop_assert!(c.used_bytes() <= b);
                }
            }
        }
    }
}
