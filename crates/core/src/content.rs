//! Shared prepared-content cache.
//!
//! The §4.1 offline preparation (ladder analysis + extended manifest) is
//! one-time per video; every harness in the workspace — single-session
//! experiments, the testkit's conformance runner, fleet runs with many
//! concurrent sessions — wants to share the result. [`ContentCache`] is
//! that shared cache: cheaply cloneable (clones share storage), safe to
//! use from the work-stealing trial pool, and able to prepare either the
//! full ladder or a restricted level set (the testkit prepares only the
//! top analyzed level, which every system in the legend can stream).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};
use voxel_media::content::VideoId;
use voxel_media::ladder::QualityLevel;
use voxel_media::qoe::QoeModel;
use voxel_media::video::Video;
use voxel_prep::manifest::Manifest;

struct Inner {
    entries: BTreeMap<VideoId, (Arc<Manifest>, Arc<Video>)>,
    qoe: QoeModel,
    /// `None` prepares the full ladder; `Some(levels)` restricts the §4.1
    /// analysis to those levels.
    levels: Option<Vec<QualityLevel>>,
}

/// Cache of prepared manifests, shareable across threads and harnesses.
/// Clones share the same storage.
#[derive(Clone)]
pub struct ContentCache {
    inner: Arc<Mutex<Inner>>,
}

impl Default for ContentCache {
    fn default() -> ContentCache {
        ContentCache::new()
    }
}

impl ContentCache {
    fn with_mode(levels: Option<Vec<QualityLevel>>) -> ContentCache {
        ContentCache {
            inner: Arc::new(Mutex::new(Inner {
                entries: BTreeMap::new(),
                qoe: QoeModel::default(),
                levels,
            })),
        }
    }

    /// Empty cache preparing the full ladder with the default QoE model.
    pub fn new() -> ContentCache {
        ContentCache::with_mode(None)
    }

    /// Empty cache preparing only the top analyzed level (the testkit's
    /// mode: fast, and sufficient for every system in the legend).
    pub fn top_level_only() -> ContentCache {
        ContentCache::with_mode(Some(vec![QualityLevel::MAX]))
    }

    /// Empty cache preparing exactly `levels`.
    pub fn with_levels(levels: &[QualityLevel]) -> ContentCache {
        ContentCache::with_mode(Some(levels.to_vec()))
    }

    /// The QoE model used for preparation and scoring.
    pub fn qoe(&self) -> QoeModel {
        self.lock().qoe.clone()
    }

    /// Get (or prepare) a video + manifest.
    pub fn get(&self, id: VideoId) -> (Arc<Manifest>, Arc<Video>) {
        let mut inner = self.lock();
        let qoe = inner.qoe.clone();
        let levels = inner.levels.clone();
        inner
            .entries
            .entry(id)
            .or_insert_with(|| {
                let video = Video::generate(id);
                let manifest = Arc::new(match levels {
                    None => Manifest::prepare(&video, &qoe),
                    Some(levels) => Manifest::prepare_levels(&video, &qoe, &levels),
                });
                (manifest, Arc::new(video))
            })
            .clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_prepares_once_and_clones_share_storage() {
        let cache = ContentCache::new();
        let (m1, _) = cache.get(VideoId::YouTube(9));
        let clone = cache.clone();
        let (m2, _) = clone.get(VideoId::YouTube(9));
        assert!(Arc::ptr_eq(&m1, &m2));
    }

    #[test]
    fn top_level_only_restricts_the_ladder() {
        let full = ContentCache::new();
        let top = ContentCache::top_level_only();
        let (mf, _) = full.get(VideoId::Bbb);
        let (mt, _) = top.get(VideoId::Bbb);
        assert_eq!(mf.num_segments(), mt.num_segments());
        // Unanalyzed levels carry the placeholder single-point analysis.
        let bottom = QualityLevel::all().next().expect("ladder is non-empty");
        assert!(
            mt.entry(0, bottom).ssims.len() <= mf.entry(0, bottom).ssims.len(),
            "top-level-only cache analyzed the bottom level"
        );
        assert_eq!(
            mt.entry(0, QualityLevel::MAX).ssims.len(),
            mf.entry(0, QualityLevel::MAX).ssims.len(),
            "the top level is analyzed in both modes"
        );
    }
}
