//! A synthetic user panel regenerating the Fig 14 study.
//!
//! The paper recruited 54 real university participants, showed them
//! one-minute clips streamed under challenging conditions by BOLA and by
//! VOXEL, and collected (a) a pairwise preference and (b) Mean Opinion
//! Scores along four dimensions: clarity (visual quality), glitches
//! (noticeable artifacts), fluidity (rebuffering), and overall experience.
//!
//! Real users are not available here, so — per the substitution rule — we
//! model the panel: each synthetic user maps a playback log (stall profile
//! plus SSIM profile) to 1-5 opinion scores with user-specific
//! sensitivities. The weights encode the paper's own observation (backed by
//! its refs 41 and 58) that **rebuffering dominates dissatisfaction**,
//! while visual artifacts weigh less. The panel regenerates the *shape* of
//! Fig 14 (VOXEL ahead on fluidity and overall experience, slightly behind
//! on clarity/glitches), not the verbatim numbers of the human study.

use crate::metrics::TrialResult;
use voxel_sim::SimRng;

/// MOS along the four surveyed dimensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mos {
    /// Visual quality.
    pub clarity: f64,
    /// Absence of noticeable artifacts.
    pub glitches: f64,
    /// Playback fluidity (absence of rebuffering).
    pub fluidity: f64,
    /// Overall viewing experience.
    pub experience: f64,
}

/// Outcome of the synthetic survey.
#[derive(Debug, Clone)]
pub struct SurveyResult {
    /// Per-system MOS (averaged over the panel).
    pub mos_a: Mos,
    /// MOS of the second system.
    pub mos_b: Mos,
    /// Fraction of users preferring system B over A.
    pub prefer_b: f64,
    /// Fraction who would have stopped watching system A's stream.
    pub would_stop_a: f64,
    /// Fraction who would have stopped watching system B's stream.
    pub would_stop_b: f64,
}

/// One synthetic user's sensitivities.
struct User {
    /// Weight of stalls on the fluidity/overall scores (rebuffering is the
    /// dominant frustration, Limelight 2020).
    stall_weight: f64,
    /// Weight of visual impairment on clarity/glitch scores.
    quality_weight: f64,
    /// Personal bias (some users rate everything higher).
    bias: f64,
}

fn score_user(u: &User, t: &TrialResult) -> Mos {
    // Stall impact: bufRatio in percent, saturating.
    let stall_pain = (t.buf_ratio_pct() / 10.0).min(1.0) * u.stall_weight;
    // Visual impairment: distance of mean SSIM below 1.0, plus dropped
    // frame artifacts.
    let ssim_gap = (1.0 - t.avg_ssim()).min(0.2) / 0.2;
    let artifact = (t.segments_with_drops as f64 / t.segment_scores.len().max(1) as f64).min(1.0);
    let quality_pain = (0.7 * ssim_gap + 0.3 * artifact) * u.quality_weight;

    let clamp = |x: f64| x.clamp(1.0, 5.0);
    let clarity = clamp(5.0 - 4.0 * (0.9 * ssim_gap * u.quality_weight) + u.bias);
    let glitches = clamp(5.0 - 4.0 * quality_pain + u.bias);
    let fluidity = clamp(5.0 - 4.5 * stall_pain + u.bias);
    let experience = clamp(5.0 - 4.0 * (0.72 * stall_pain + 0.28 * quality_pain) + u.bias);
    Mos {
        clarity,
        glitches,
        fluidity,
        experience,
    }
}

/// Run the panel: `users` synthetic participants rate one paired trial
/// (system A vs system B, same conditions).
pub fn run_survey(a: &TrialResult, b: &TrialResult, users: usize, seed: u64) -> SurveyResult {
    let mut rng = SimRng::derive(seed, "survey");
    let mut sum_a = Mos {
        clarity: 0.0,
        glitches: 0.0,
        fluidity: 0.0,
        experience: 0.0,
    };
    let mut sum_b = sum_a;
    let mut prefer_b = 0usize;
    let mut stop_a = 0usize;
    let mut stop_b = 0usize;

    for _ in 0..users {
        let user = User {
            stall_weight: rng.uniform_range(0.7, 1.3),
            quality_weight: rng.uniform_range(0.6, 1.2),
            bias: rng.normal_ms(0.0, 0.25),
        };
        let ma = score_user(&user, a);
        let mb = score_user(&user, b);
        sum_a.clarity += ma.clarity;
        sum_a.glitches += ma.glitches;
        sum_a.fluidity += ma.fluidity;
        sum_a.experience += ma.experience;
        sum_b.clarity += mb.clarity;
        sum_b.glitches += mb.glitches;
        sum_b.fluidity += mb.fluidity;
        sum_b.experience += mb.experience;
        // Preference: overall experience with a little noise.
        if mb.experience + rng.normal_ms(0.0, 0.2) > ma.experience {
            prefer_b += 1;
        }
        // "Would you have stopped watching?" — triggered by low experience.
        if ma.experience + rng.normal_ms(0.0, 0.3) < 2.8 {
            stop_a += 1;
        }
        if mb.experience + rng.normal_ms(0.0, 0.3) < 2.8 {
            stop_b += 1;
        }
    }

    let n = users as f64;
    let avg = |m: Mos| Mos {
        clarity: m.clarity / n,
        glitches: m.glitches / n,
        fluidity: m.fluidity / n,
        experience: m.experience / n,
    };
    SurveyResult {
        mos_a: avg(sum_a),
        mos_b: avg(sum_b),
        prefer_b: prefer_b as f64 / n,
        would_stop_a: stop_a as f64 / n,
        would_stop_b: stop_b as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxel_media::qoe::QoeScores;

    fn trial(stall_pct: f64, ssim: f64, drops: u32) -> TrialResult {
        TrialResult {
            video: "BBB".into(),
            abr: "X".into(),
            stall_s: stall_pct * 3.0, // duration 300 s ⇒ pct×3 seconds
            duration_s: 300.0,
            startup_s: 1.0,
            segment_kbps: vec![4000.0; 75],
            segment_scores: vec![
                QoeScores {
                    ssim,
                    vmaf: 90.0,
                    psnr_db: 40.0
                };
                75
            ],
            bytes_downloaded: 0,
            bytes_wasted: 0,
            bytes_skipped: 0,
            bytes_full: 1,
            restarts: 0,
            kept_partials: 0,
            bytes_lost: 0,
            bytes_recovered: 0,
            segments_with_drops: drops,
            frames_dropped: drops,
            referenced_frames_dropped: 0,
            transport: crate::metrics::TransportStats::default(),
            metrics: None,
            completed: true,
        }
    }

    #[test]
    fn stall_free_stream_scores_high_fluidity() {
        // BOLA-like: heavy stalls, pristine quality. VOXEL-like: no stalls,
        // slight quality loss.
        let bola = trial(12.0, 0.995, 0);
        let voxel = trial(0.5, 0.985, 10);
        let s = run_survey(&bola, &voxel, 54, 42);
        assert!(
            s.mos_b.fluidity > s.mos_a.fluidity + 1.0,
            "fluidity {} vs {}",
            s.mos_b.fluidity,
            s.mos_a.fluidity
        );
        // Clarity trades the other way (paper: −0.49 for VOXEL).
        assert!(s.mos_b.clarity <= s.mos_a.clarity + 0.05);
        // Overall experience prefers the fluid stream (paper: 84 % prefer
        // VOXEL, +0.77 experience).
        assert!(s.mos_b.experience > s.mos_a.experience);
        assert!(s.prefer_b > 0.7, "prefer {}", s.prefer_b);
        assert!(s.would_stop_a > s.would_stop_b);
    }

    #[test]
    fn identical_streams_split_the_panel() {
        let t = trial(2.0, 0.99, 2);
        let s = run_survey(&t, &t, 200, 7);
        assert!((s.prefer_b - 0.5).abs() < 0.15, "prefer {}", s.prefer_b);
        assert!((s.mos_a.experience - s.mos_b.experience).abs() < 0.05);
    }

    #[test]
    fn survey_is_deterministic_in_seed() {
        let a = trial(10.0, 0.99, 0);
        let b = trial(1.0, 0.98, 5);
        let s1 = run_survey(&a, &b, 54, 1);
        let s2 = run_survey(&a, &b, 54, 1);
        assert_eq!(s1.prefer_b, s2.prefer_b);
        assert_eq!(s1.mos_a, s2.mos_a);
    }

    #[test]
    fn scores_stay_in_mos_range() {
        let terrible = trial(50.0, 0.7, 75);
        let perfect = trial(0.0, 1.0, 0);
        let s = run_survey(&terrible, &perfect, 54, 3);
        for m in [s.mos_a, s.mos_b] {
            for v in [m.clarity, m.glitches, m.fluidity, m.experience] {
                assert!((1.0..=5.0).contains(&v), "MOS {v}");
            }
        }
        assert!(s.mos_b.experience > 4.0);
        assert!(s.mos_a.experience < 2.5);
    }
}
