#![warn(missing_docs)]
//! # voxel-core
//!
//! The end-to-end VOXEL system: a DASH video server and a headless player
//! client joined by QUIC\* over the emulated bottleneck path, plus the
//! experiment harness that reproduces the paper's evaluation protocol.
//!
//! - [`server`]: serves the extended manifest and segment byte ranges over
//!   reliable or unreliable streams, honouring `x-voxel-unreliable`.
//! - [`client`]: the player — ABR-driven segment fetching (reliable
//!   I-frame/headers + unreliable bodies), buffer and stall accounting,
//!   segment abandonment, selective retransmission during buffer-full
//!   periods, zero-padding and QoE scoring of partial segments.
//! - [`session`]: the deterministic event loop wiring client, server and
//!   path together for one playback trial.
//! - [`metrics`]: per-trial results (bufRatio, bitrates, SSIM/VMAF/PSNR
//!   distributions, skipped data, retransmission recovery) and aggregation
//!   helpers for the figures.
//! - [`experiment`]: named configurations (ABR × transport × trace × buffer)
//!   and the 30-trial shifted-trace protocol of §5.
//! - [`survey`]: the synthetic user panel regenerating the Fig 14 MOS study.

pub mod client;
pub mod content;
pub mod experiment;
pub mod metrics;
pub mod server;
pub mod session;
pub mod survey;

pub use client::{PlayerConfig, TransportMode};
pub use content::{Admission, CacheConfig, ContentCache, EdgeCache, EvictionPolicy};
pub use content::{ObjectKey, ObjectKind};
pub use experiment::{AbrKind, Config, Experiment, ExperimentBuilder, Tracing};
pub use metrics::{Aggregate, TransportStats, TrialResult};
pub use server::{ServeNote, ServerApp};
pub use session::Session;
