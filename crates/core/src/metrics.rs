//! Per-trial results and aggregation helpers for the figures.

use voxel_media::qoe::QoeScores;
use voxel_trace::MetricsSnapshot;

/// Transport-layer statistics of one trial, taken from the server-side
/// (data-sending) QUIC\* connection at session end. Counter fields come
/// from the connection's own accounting and are always filled; the two
/// mean fields are sourced from the trace metrics registry when tracing is
/// on, and fall back to the final instantaneous values when it is off.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct TransportStats {
    /// Packets sent.
    pub packets_sent: u64,
    /// Packets declared lost.
    pub packets_lost: u64,
    /// Loss events (bursts the congestion controller reacted to once).
    pub loss_events: u64,
    /// PTO fires.
    pub ptos: u64,
    /// Ack-eliciting wire bytes sent.
    pub bytes_sent: u64,
    /// Reliable-stream payload bytes retransmitted.
    pub bytes_retransmitted: u64,
    /// Mean congestion window over all sends, bytes.
    pub mean_cwnd_bytes: f64,
    /// Mean smoothed RTT over all acks, milliseconds.
    pub mean_srtt_ms: f64,
    /// Packets the *client-side* connection received (the receiver of the
    /// video data — where injected reordering/duplication shows up).
    pub client_packets_received: u64,
    /// Client-side packets discarded as duplicates.
    pub client_packets_duplicate: u64,
    /// Client-side packets that arrived out of order.
    pub client_packets_reordered: u64,
}

/// Outcome of one playback trial (one video, one trace shift).
#[derive(Debug, Default, Clone)]
pub struct TrialResult {
    /// Video short name (BBB, ED, …).
    pub video: String,
    /// ABR display name.
    pub abr: String,
    /// Total stall time after playback start, seconds.
    pub stall_s: f64,
    /// Video duration, seconds.
    pub duration_s: f64,
    /// Startup delay (first segment ready), seconds.
    pub startup_s: f64,
    /// Per-segment delivered bitrate in kbps (bits delivered / 4 s).
    pub segment_kbps: Vec<f64>,
    /// Per-segment QoE scores at play time (after any recovery).
    pub segment_scores: Vec<QoeScores>,
    /// Total bytes downloaded (including waste).
    pub bytes_downloaded: u64,
    /// Bytes discarded by restart-style abandonment (BOLA/BETA waste).
    pub bytes_wasted: u64,
    /// Full-segment payload bytes that were *not* downloaded (skipped).
    pub bytes_skipped: u64,
    /// Payload bytes of all complete segments had everything been fetched.
    pub bytes_full: u64,
    /// Restart-abandonment count.
    pub restarts: u32,
    /// Keep-partial abandonment count.
    pub kept_partials: u32,
    /// Unreliable-stream bytes lost in transit.
    pub bytes_lost: u64,
    /// Lost bytes later recovered by selective retransmission.
    pub bytes_recovered: u64,
    /// Segments that ended with at least one dropped/partial frame.
    pub segments_with_drops: u32,
    /// Dropped frames across the session.
    pub frames_dropped: u32,
    /// Dropped frames that were referenced by other frames.
    pub referenced_frames_dropped: u32,
    /// Transport-layer statistics (server-side connection).
    pub transport: TransportStats,
    /// Metrics-registry snapshot at session end (None with tracing off).
    pub metrics: Option<MetricsSnapshot>,
    /// Whether the session ran to completion. `false` means the safety cap
    /// froze the trial mid-stream, so stall/QoE figures are lower bounds.
    pub completed: bool,
}

impl TrialResult {
    /// The paper's headline metric: total stall time / video duration
    /// ("bufRatio"), in percent.
    pub fn buf_ratio_pct(&self) -> f64 {
        100.0 * self.stall_s / self.duration_s.max(1e-9)
    }

    /// Mean delivered bitrate in kbps.
    pub fn avg_bitrate_kbps(&self) -> f64 {
        voxel_sim::stats::mean(&self.segment_kbps)
    }

    /// Mean segment SSIM.
    pub fn avg_ssim(&self) -> f64 {
        let v: Vec<f64> = self.segment_scores.iter().map(|s| s.ssim).collect();
        voxel_sim::stats::mean(&v)
    }

    /// All segment SSIMs.
    pub fn ssims(&self) -> Vec<f64> {
        self.segment_scores.iter().map(|s| s.ssim).collect()
    }

    /// All segment VMAF scores.
    pub fn vmafs(&self) -> Vec<f64> {
        self.segment_scores.iter().map(|s| s.vmaf).collect()
    }

    /// All segment PSNR scores.
    pub fn psnrs(&self) -> Vec<f64> {
        self.segment_scores.iter().map(|s| s.psnr_db).collect()
    }

    /// Percent of segment data skipped (Fig 7d).
    pub fn data_skipped_pct(&self) -> f64 {
        100.0 * self.bytes_skipped as f64 / self.bytes_full.max(1) as f64
    }

    /// Fraction of in-transit losses left unrecovered after selective
    /// retransmission (§4.2 reports 0.9–1.8 %).
    pub fn residual_loss_pct(&self) -> f64 {
        if self.bytes_lost == 0 {
            return 0.0;
        }
        100.0 * (self.bytes_lost - self.bytes_recovered.min(self.bytes_lost)) as f64
            / self.bytes_lost as f64
    }
}

/// Aggregate of several trials of one configuration — the paper reports
/// "the 90th-percentile and standard error … for 30 trials".
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// The trials.
    pub trials: Vec<TrialResult>,
}

impl Aggregate {
    /// Wrap a set of trials.
    pub fn new(trials: Vec<TrialResult>) -> Aggregate {
        Aggregate { trials }
    }

    /// 90th-percentile bufRatio across trials, in percent (Figs 3, 5, 6…).
    pub fn buf_ratio_p90(&self) -> f64 {
        let v: Vec<f64> = self.trials.iter().map(|t| t.buf_ratio_pct()).collect();
        voxel_sim::stats::percentile(&v, 0.9)
    }

    /// Mean bufRatio across trials, percent.
    pub fn buf_ratio_mean(&self) -> f64 {
        let v: Vec<f64> = self.trials.iter().map(|t| t.buf_ratio_pct()).collect();
        voxel_sim::stats::mean(&v)
    }

    /// Trials that ran to completion (the safety cap never fired).
    pub fn completed_trials(&self) -> usize {
        self.trials.iter().filter(|t| t.completed).count()
    }

    /// Trials abandoned at the safety cap.
    pub fn abandoned_trials(&self) -> usize {
        self.trials.len() - self.completed_trials()
    }

    /// Standard error of the per-trial bufRatio, over *completed* trials.
    ///
    /// Abandoned trials report a frozen lower-bound bufRatio, not a sample
    /// from the same distribution; including them used to shrink the error
    /// bar by inflating `n` to the configured trial count. The point
    /// estimates (`buf_ratio_p90`, `buf_ratio_mean`) still pool every
    /// trial so severe-starvation configurations are not censored.
    pub fn buf_ratio_stderr(&self) -> f64 {
        let v: Vec<f64> = self
            .trials
            .iter()
            .filter(|t| t.completed)
            .map(|t| t.buf_ratio_pct())
            .collect();
        voxel_sim::stats::std_err(&v)
    }

    /// Mean of per-trial average bitrates, kbps (Figs 4, 8…).
    pub fn bitrate_mean_kbps(&self) -> f64 {
        let v: Vec<f64> = self.trials.iter().map(|t| t.avg_bitrate_kbps()).collect();
        voxel_sim::stats::mean(&v)
    }

    /// All segment SSIMs pooled across trials (for CDFs, Figs 7b, 9…).
    pub fn pooled_ssims(&self) -> Vec<f64> {
        self.trials.iter().flat_map(|t| t.ssims()).collect()
    }

    /// All segment VMAFs pooled across trials.
    pub fn pooled_vmafs(&self) -> Vec<f64> {
        self.trials.iter().flat_map(|t| t.vmafs()).collect()
    }

    /// Mean SSIM across all segments of all trials.
    pub fn mean_ssim(&self) -> f64 {
        voxel_sim::stats::mean(&self.pooled_ssims())
    }

    /// Mean percent of data skipped.
    pub fn data_skipped_mean_pct(&self) -> f64 {
        let v: Vec<f64> = self.trials.iter().map(|t| t.data_skipped_pct()).collect();
        voxel_sim::stats::mean(&v)
    }

    /// Mean residual loss percent (selective-retransmission effectiveness).
    pub fn residual_loss_mean_pct(&self) -> f64 {
        let v: Vec<f64> = self.trials.iter().map(|t| t.residual_loss_pct()).collect();
        voxel_sim::stats::mean(&v)
    }

    /// Mean congestion window across trials, bytes.
    pub fn mean_cwnd_bytes(&self) -> f64 {
        let v: Vec<f64> = self
            .trials
            .iter()
            .map(|t| t.transport.mean_cwnd_bytes)
            .collect();
        voxel_sim::stats::mean(&v)
    }

    /// Mean loss-event count per trial.
    pub fn mean_loss_events(&self) -> f64 {
        let v: Vec<f64> = self
            .trials
            .iter()
            .map(|t| t.transport.loss_events as f64)
            .collect();
        voxel_sim::stats::mean(&v)
    }

    /// Mean PTO count per trial.
    pub fn mean_ptos(&self) -> f64 {
        let v: Vec<f64> = self
            .trials
            .iter()
            .map(|t| t.transport.ptos as f64)
            .collect();
        voxel_sim::stats::mean(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial(stall: f64, kbps: f64, ssim: f64) -> TrialResult {
        TrialResult {
            video: "BBB".into(),
            abr: "TEST".into(),
            stall_s: stall,
            duration_s: 300.0,
            startup_s: 1.0,
            segment_kbps: vec![kbps; 75],
            segment_scores: vec![
                QoeScores {
                    ssim,
                    vmaf: 90.0,
                    psnr_db: 40.0
                };
                75
            ],
            bytes_downloaded: 1000,
            bytes_wasted: 100,
            bytes_skipped: 50,
            bytes_full: 1000,
            restarts: 1,
            kept_partials: 2,
            bytes_lost: 200,
            bytes_recovered: 150,
            segments_with_drops: 3,
            frames_dropped: 10,
            referenced_frames_dropped: 4,
            transport: TransportStats::default(),
            metrics: None,
            completed: true,
        }
    }

    #[test]
    fn buf_ratio_is_stall_over_duration() {
        let t = trial(15.0, 4000.0, 0.99);
        assert!((t.buf_ratio_pct() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn skipped_and_residual_percentages() {
        let t = trial(0.0, 4000.0, 0.99);
        assert!((t.data_skipped_pct() - 5.0).abs() < 1e-9);
        assert!((t.residual_loss_pct() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn residual_loss_zero_when_no_loss() {
        let mut t = trial(0.0, 1.0, 0.9);
        t.bytes_lost = 0;
        assert_eq!(t.residual_loss_pct(), 0.0);
    }

    #[test]
    fn aggregate_percentiles() {
        let trials: Vec<TrialResult> = (0..10)
            .map(|i| trial(i as f64 * 3.0, 4000.0, 0.99))
            .collect();
        let agg = Aggregate::new(trials);
        // stalls 0..27 s → bufRatio 0..9 %, p90 = 8.1 %.
        assert!((agg.buf_ratio_p90() - 8.1).abs() < 1e-9);
        assert!((agg.buf_ratio_mean() - 4.5).abs() < 1e-9);
        assert!(agg.buf_ratio_stderr() > 0.0);
        assert_eq!(agg.pooled_ssims().len(), 750);
        assert!((agg.mean_ssim() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn stderr_counts_only_completed_trials() {
        // Four configured trials, one abandoned at the safety cap. The
        // standard error must be computed over the three completed trials
        // (n = 3), not the configured four — the old behavior divided by
        // sqrt(4) and shrank the error bar.
        let mut trials: Vec<TrialResult> = [6.0, 12.0, 24.0]
            .iter()
            .map(|&s| trial(s, 4000.0, 0.99))
            .collect();
        let mut abandoned = trial(150.0, 500.0, 0.7);
        abandoned.completed = false;
        trials.push(abandoned);
        let agg = Aggregate::new(trials);
        assert_eq!(agg.completed_trials(), 3);
        assert_eq!(agg.abandoned_trials(), 1);
        // bufRatios of the completed trials: 2, 4, 8 %.
        let expect = voxel_sim::stats::std_err(&[2.0, 4.0, 8.0]);
        assert!(
            (agg.buf_ratio_stderr() - expect).abs() < 1e-12,
            "stderr {} vs completed-only {expect}",
            agg.buf_ratio_stderr()
        );
        // The abandoned trial still pollutes n=4 statistics if included.
        let wrong = voxel_sim::stats::std_err(&[2.0, 4.0, 8.0, 50.0]);
        assert!((agg.buf_ratio_stderr() - wrong).abs() > 1e-6);
        // Point estimates keep pooling all four trials.
        assert!((agg.buf_ratio_mean() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn stderr_of_all_abandoned_trials_is_zero() {
        let mut t = trial(10.0, 100.0, 0.8);
        t.completed = false;
        let agg = Aggregate::new(vec![t]);
        assert_eq!(agg.completed_trials(), 0);
        assert_eq!(agg.buf_ratio_stderr(), 0.0);
    }

    #[test]
    fn transport_means_aggregate() {
        let mut a = trial(0.0, 1.0, 0.9);
        a.transport.loss_events = 4;
        a.transport.ptos = 2;
        a.transport.mean_cwnd_bytes = 100_000.0;
        let mut b = trial(0.0, 1.0, 0.9);
        b.transport.loss_events = 6;
        b.transport.mean_cwnd_bytes = 200_000.0;
        let agg = Aggregate::new(vec![a, b]);
        assert_eq!(agg.mean_loss_events(), 5.0);
        assert_eq!(agg.mean_ptos(), 1.0);
        assert_eq!(agg.mean_cwnd_bytes(), 150_000.0);
    }
}
