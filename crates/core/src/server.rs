//! The VOXEL video server.
//!
//! Serves three kinds of resources over QUIC\* streams:
//!
//! - `/manifest` — the extended DASH manifest (reliable),
//! - `/seg/{i}/{q}/head` — a segment's reliable part: I-frame + all frame
//!   headers (always a reliable stream),
//! - `/seg/{i}/{q}/body` — the remaining frame payloads in download order;
//!   delivered on an **unreliable** stream iff the request carries
//!   `x-voxel-unreliable` *and* the server is VOXEL-aware, otherwise on a
//!   reliable stream (backward compatibility, §4.2: "a VOXEL-unaware server
//!   ignores the header and opens reliable streams only").
//!
//! Replies travel on the same stream id that carried the request
//! (bidirectional-stream HTTP semantics). Reliable replies carry an HTTP
//! header; unreliable replies are headerless — the client issued an exact
//! Range request and knows precisely what to expect, so a losable header
//! would add nothing but a failure mode.

use crate::content::ObjectKind;
use std::collections::BTreeMap;
use voxel_http::{Request, Response};
use voxel_media::ladder::QualityLevel;
use voxel_prep::manifest::Manifest;
use voxel_quic::{Connection, Event, Reliability, StreamId};
use voxel_sim::SimTime;
use voxel_trace::Tracer;

/// One response the server resolved, recorded for the fleet's edge
/// serving tier (DESIGN.md §16). Notes identify the object (segment,
/// level, kind) and how many payload bytes the response carried, so an
/// edge cache sitting in front of this server can account hits, misses,
/// and origin fetches without re-parsing requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeNote {
    /// Segment index (0 for the manifest).
    pub seg: u32,
    /// Quality level index (0 for the manifest).
    pub level: u8,
    /// Object kind (manifest / reliable head / unreliable-tail body).
    pub kind: ObjectKind,
    /// Whether this was a partial (ranged) body response — a selective
    /// retransmission or prefix fetch, never admitted by an edge cache.
    pub partial: bool,
    /// Payload bytes the response carried.
    pub bytes: u64,
}

/// Server-side application state.
pub struct ServerApp {
    manifest: std::sync::Arc<Manifest>,
    /// Whether this server understands `x-voxel-unreliable`.
    pub voxel_aware: bool,
    /// Request bytes accumulating per stream.
    inbox: BTreeMap<StreamId, Vec<u8>>,
    /// Count of requests served, by kind (for tests/stats).
    pub served_heads: u64,
    /// Body requests served.
    pub served_bodies: u64,
    /// Range re-requests served (selective retransmission).
    pub served_retx: u64,
    /// Serve-note recording (off by default; the fleet's edge tier turns
    /// it on so plain sessions pay nothing).
    record_notes: bool,
    notes: Vec<ServeNote>,
    tracer: Tracer,
}

impl ServerApp {
    /// A server for one video's manifest.
    pub fn new(manifest: std::sync::Arc<Manifest>, voxel_aware: bool) -> ServerApp {
        ServerApp {
            manifest,
            voxel_aware,
            inbox: BTreeMap::new(),
            served_heads: 0,
            served_bodies: 0,
            served_retx: 0,
            record_notes: false,
            notes: Vec::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Install a tracer (shared with the rest of the session).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Turn serve-note recording on or off (see [`ServeNote`]).
    pub fn record_serve_notes(&mut self, on: bool) {
        self.record_notes = on;
    }

    /// Drain the notes recorded since the last call, in serve order.
    pub fn take_serve_notes(&mut self) -> Vec<ServeNote> {
        std::mem::take(&mut self.notes)
    }

    /// Pump the server side: consume connection events, parse requests, and
    /// write responses back into `conn`. `now` is the current sim time,
    /// used only to timestamp trace events.
    pub fn handle(&mut self, now: SimTime, conn: &mut Connection) {
        while let Some(ev) = conn.poll_event() {
            match ev {
                Event::StreamOpened(..) | Event::StreamFinished(_) | Event::StreamReset(_) => {}
                Event::StreamReadable(id) => {
                    // Requests are small; read whatever is in order.
                    let buf = self.inbox.entry(id).or_default();
                    if let Some(rs) = conn.recv_stream(id) {
                        while let Some(chunk) = rs.read() {
                            buf.extend_from_slice(&chunk);
                        }
                    }
                    if buf.windows(4).any(|w| w == b"\r\n\r\n") {
                        if let Some(req) =
                            self.inbox.remove(&id).and_then(|raw| Request::decode(&raw))
                        {
                            self.respond(now, conn, id, &req);
                        }
                    }
                }
                Event::UnreliableLoss { .. } | Event::Closed { .. } => {}
            }
        }
    }

    fn respond(&mut self, now: SimTime, conn: &mut Connection, id: StreamId, req: &Request) {
        let (len, unreliable) = match self.resolve(req) {
            Some(x) => x,
            None => {
                conn.open_reply_stream(id, Reliability::Reliable);
                let resp = Response::error(voxel_http::StatusCode::NotFound);
                voxel_http::trace::trace_response(&self.tracer, now, id.0, &resp, 0, false);
                conn.send(id, &resp.encode());
                conn.finish(id);
                return;
            }
        };
        // Body replies are headerless on BOTH stream classes: the client's
        // exact Range request already determines the payload byte-for-byte,
        // so stream offsets map 1:1 to body offsets regardless of which
        // transport served them (see module docs).
        let headerless = req.path.ends_with("/body");
        let reliability = if unreliable {
            Reliability::Unreliable
        } else {
            Reliability::Reliable
        };
        conn.open_reply_stream(id, reliability);
        if !headerless {
            let resp = if req.ranges.is_empty() {
                Response::ok(len)
            } else {
                Response::partial(req.ranges.clone())
            };
            voxel_http::trace::trace_response(&self.tracer, now, id.0, &resp, len, unreliable);
            conn.send(id, &resp.encode());
        } else if self.tracer.enabled() {
            // Headerless body replies still count as served responses.
            let status = if req.ranges.is_empty() {
                Response::ok(len)
            } else {
                Response::partial(req.ranges.clone())
            };
            voxel_http::trace::trace_response(&self.tracer, now, id.0, &status, len, unreliable);
        }
        conn.send(id, &zeros(len as usize));
        conn.finish(id);
    }

    /// Record a serve note, if recording is on.
    fn note(&mut self, seg: u32, level: u8, kind: ObjectKind, partial: bool, bytes: u64) {
        if self.record_notes {
            self.notes.push(ServeNote {
                seg,
                level,
                kind,
                partial,
                bytes,
            });
        }
    }

    /// Resolve a request path to (body length, deliver-unreliably).
    fn resolve(&mut self, req: &Request) -> Option<(u64, bool)> {
        let unreliable = req.unreliable && self.voxel_aware;
        if req.path == "/manifest" {
            let bytes = self.manifest.size_bytes() as u64;
            self.note(0, 0, ObjectKind::Manifest, false, bytes);
            return Some((bytes, false));
        }
        let mut parts = req.path.strip_prefix("/seg/")?.split('/');
        let seg: usize = parts.next()?.parse().ok()?;
        let q: usize = parts.next()?.parse().ok()?;
        let kind = parts.next()?;
        if seg >= self.manifest.num_segments() {
            return None;
        }
        let level = QualityLevel::try_from(q).ok()?;
        let entry = self.manifest.entry(seg, level);
        match kind {
            "head" => {
                self.served_heads += 1;
                // The head is always reliable, whatever the header says.
                let len = entry.reliable_size;
                self.note(seg as u32, q as u8, ObjectKind::Head, false, len);
                Some((len, false))
            }
            "body" => {
                let body_full = entry.total_bytes() - entry.reliable_size;
                let len = if req.ranges.is_empty() {
                    body_full
                } else {
                    // Validate ranges against the body length.
                    if req.ranges.iter().any(|&(_, e)| e >= body_full) {
                        return None;
                    }
                    if req.ranges.len() > 1 || req.ranges[0].0 != 0 {
                        self.served_retx += 1;
                    }
                    req.range_bytes()
                };
                self.served_bodies += 1;
                self.note(
                    seg as u32,
                    q as u8,
                    ObjectKind::Body,
                    !req.ranges.is_empty(),
                    len,
                );
                Some((len, unreliable))
            }
            _ => None,
        }
    }
}

/// A zero-filled body of the given length (the simulation transfers real
/// bytes; their values are irrelevant to every metric).
fn zeros(len: usize) -> Vec<u8> {
    vec![0u8; len]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use voxel_media::content::VideoId;
    use voxel_media::qoe::QoeModel;
    use voxel_media::video::Video;
    use voxel_quic::Role;
    use voxel_sim::SimTime;

    fn server() -> (ServerApp, Arc<Manifest>) {
        let video = Video::generate(VideoId::Bbb);
        let manifest = Arc::new(Manifest::prepare_levels(
            &video,
            &QoeModel::default(),
            &[QualityLevel::MAX],
        ));
        (ServerApp::new(manifest.clone(), true), manifest)
    }

    /// Run one request through server logic directly (no network).
    fn resolve(app: &mut ServerApp, req: Request) -> Option<(u64, bool)> {
        app.resolve(&req)
    }

    #[test]
    fn manifest_resolves_reliable() {
        let (mut app, m) = server();
        let (len, unrel) = resolve(&mut app, Request::get("/manifest")).unwrap();
        assert_eq!(len, m.size_bytes() as u64);
        assert!(!unrel);
    }

    #[test]
    fn unreliable_header_on_reliable_only_resources_is_ignored() {
        // `x-voxel-unreliable` is advisory: the manifest and segment heads
        // are reliable-only resources, so even a VOXEL-aware server serves
        // them reliably (and still serves them — no error).
        let (mut app, m) = server();
        let (len, unrel) = resolve(&mut app, Request::get("/manifest").with_unreliable()).unwrap();
        assert_eq!(len, m.size_bytes() as u64);
        assert!(!unrel, "manifest never goes unreliable");
        // A ranged head request with the header set: same story.
        let req = Request::get("/seg/0/12/head")
            .with_unreliable()
            .with_range(0, 9);
        let (_, unrel) = resolve(&mut app, req).unwrap();
        assert!(!unrel, "heads never go unreliable");
    }

    #[test]
    fn head_is_always_reliable() {
        let (mut app, m) = server();
        let req = Request::get("/seg/3/12/head").with_unreliable();
        let (len, unrel) = resolve(&mut app, req).unwrap();
        assert_eq!(len, m.entry(3, QualityLevel::MAX).reliable_size);
        assert!(!unrel, "heads never go unreliable");
        assert_eq!(app.served_heads, 1);
    }

    #[test]
    fn body_honours_unreliable_header_when_aware() {
        let (mut app, m) = server();
        let e = m.entry(3, QualityLevel::MAX);
        let body = e.total_bytes() - e.reliable_size;
        let req = Request::get("/seg/3/12/body").with_unreliable();
        let (len, unrel) = resolve(&mut app, req).unwrap();
        assert_eq!(len, body);
        assert!(unrel);
    }

    #[test]
    fn voxel_unaware_server_ignores_the_header() {
        let (mut app, _) = server();
        app.voxel_aware = false;
        let req = Request::get("/seg/3/12/body").with_unreliable();
        let (_, unrel) = resolve(&mut app, req).unwrap();
        assert!(!unrel, "unaware server replies reliably");
    }

    #[test]
    fn body_range_requests_and_retx_counting() {
        let (mut app, _) = server();
        // Prefix range: a partial-target fetch, not a retransmission.
        let (len, _) =
            resolve(&mut app, Request::get("/seg/0/12/body").with_range(0, 999)).unwrap();
        assert_eq!(len, 1000);
        assert_eq!(app.served_retx, 0);
        // Mid-stream ranges: selective retransmission.
        let (len, _) = resolve(
            &mut app,
            Request::get("/seg/0/12/body")
                .with_range(5000, 5999)
                .with_range(9000, 9099),
        )
        .unwrap();
        assert_eq!(len, 1100);
        assert_eq!(app.served_retx, 1);
    }

    #[test]
    fn invalid_paths_and_ranges_rejected() {
        let (mut app, m) = server();
        assert!(resolve(&mut app, Request::get("/nope")).is_none());
        assert!(resolve(&mut app, Request::get("/seg/999/12/body")).is_none());
        assert!(resolve(&mut app, Request::get("/seg/0/13/body")).is_none());
        assert!(resolve(&mut app, Request::get("/seg/0/12/tail")).is_none());
        let e = m.entry(0, QualityLevel::MAX);
        let too_far = e.total_bytes(); // beyond the body
        assert!(resolve(
            &mut app,
            Request::get("/seg/0/12/body").with_range(0, too_far)
        )
        .is_none());
    }

    #[test]
    fn serve_notes_record_objects_when_enabled() {
        let (mut app, m) = server();
        // Off by default: no notes accumulate.
        resolve(&mut app, Request::get("/manifest"));
        assert!(app.take_serve_notes().is_empty());
        app.record_serve_notes(true);
        resolve(&mut app, Request::get("/manifest")).unwrap();
        resolve(&mut app, Request::get("/seg/3/12/head")).unwrap();
        resolve(&mut app, Request::get("/seg/3/12/body").with_unreliable()).unwrap();
        resolve(
            &mut app,
            Request::get("/seg/3/12/body").with_range(5000, 5999),
        )
        .unwrap();
        // Failed resolves leave no note.
        assert!(resolve(&mut app, Request::get("/seg/999/12/head")).is_none());
        let notes = app.take_serve_notes();
        assert_eq!(notes.len(), 4);
        assert_eq!(notes[0].kind, ObjectKind::Manifest);
        assert_eq!(
            (
                notes[1].seg,
                notes[1].level,
                notes[1].kind,
                notes[1].partial
            ),
            (3, 12, ObjectKind::Head, false)
        );
        let e = m.entry(3, QualityLevel::MAX);
        assert_eq!(notes[2].bytes, e.total_bytes() - e.reliable_size);
        assert!(!notes[2].partial, "full body is not a partial response");
        assert!(notes[3].partial, "ranged body is partial");
        assert_eq!(notes[3].bytes, 1000);
        assert!(app.take_serve_notes().is_empty(), "take drains");
    }

    #[test]
    fn end_to_end_request_over_connections() {
        let (mut app, m) = server();
        let mut client = Connection::with_defaults(Role::Client);
        let mut server_conn = Connection::with_defaults(Role::Server);
        let sid = client.open_stream(Reliability::Reliable);
        client.send(sid, &Request::get("/manifest").encode());
        client.finish(sid);

        // Shuttle datagrams directly (no loss, no delay).
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            now += voxel_sim::SimDuration::from_millis(30);
            let mut moved = false;
            while let Some(p) = client.poll_transmit(now) {
                server_conn.on_datagram(now, p.encode());
                moved = true;
            }
            app.handle(now, &mut server_conn);
            while let Some(p) = server_conn.poll_transmit(now) {
                client.on_datagram(now, p.encode());
                moved = true;
            }
            if !moved && client.recv_stream(sid).is_some_and(|s| s.is_complete()) {
                break;
            }
        }
        let rs = client.recv_stream(sid).expect("reply stream");
        assert!(rs.is_complete());
        // Reply = HTTP header + manifest bytes.
        let total = rs.final_len().unwrap();
        assert!(total > m.size_bytes() as u64);
    }
}
