//! One playback trial: client ⇄ (bottleneck path) ⇄ server, in virtual time.
//!
//! The deterministic event loop owns both QUIC\* endpoints, the server and
//! client applications, and the emulated path. Each iteration drains
//! application logic and transmissions, then advances virtual time to the
//! earliest pending event (datagram delivery, transport timer, or the
//! player's 100 ms tick).

use crate::client::{ClientApp, PlayerConfig, TransportMode};
use crate::metrics::{TransportStats, TrialResult};
use crate::server::ServerApp;
use bytes::Bytes;
use std::sync::Arc;
use voxel_abr::Abr;
use voxel_media::qoe::QoeModel;
use voxel_media::video::Video;
use voxel_netem::{BottleneckPath, FaultPlane, PacketFate, PathConfig};
use voxel_prep::manifest::Manifest;
use voxel_quic::{CcKind, Connection, ConnectionConfig, Role};
use voxel_sim::{EventQueue, SimDuration, SimTime};
use voxel_trace::{trace_event, Layer, Tracer};

/// Events of the session loop.
enum Ev {
    /// Datagram arriving at the client.
    ToClient(Bytes),
    /// Datagram arriving at the server.
    ToServer(Bytes),
    /// Player tick (progress checks, playback deadlines).
    Tick,
}

/// One streaming trial.
pub struct Session {
    queue: EventQueue<Ev>,
    path: BottleneckPath,
    client_conn: Connection,
    server_conn: Connection,
    server: ServerApp,
    client: ClientApp,
    /// Hard cap on simulated time (safety net; never reached in practice).
    cap: SimTime,
    tracer: Tracer,
    /// Seeded packet-fault plane (testkit scenarios; `None` = clean path).
    faults: Option<FaultPlane>,
}

impl Session {
    /// Assemble a session.
    pub fn new(
        path_config: PathConfig,
        manifest: Arc<Manifest>,
        video: Arc<Video>,
        qoe: QoeModel,
        abr: Box<dyn Abr>,
        player: PlayerConfig,
    ) -> Session {
        Self::with_cc(
            path_config,
            manifest,
            video,
            qoe,
            abr,
            player,
            CcKind::Cubic,
        )
    }

    /// Assemble a session with an explicit congestion controller (the
    /// Appendix B delay-based-CC ablation).
    pub fn with_cc(
        path_config: PathConfig,
        manifest: Arc<Manifest>,
        video: Arc<Video>,
        qoe: QoeModel,
        abr: Box<dyn Abr>,
        player: PlayerConfig,
        cc: CcKind,
    ) -> Session {
        let duration = video.duration_s();
        let client = ClientApp::new(player, manifest.clone(), video, qoe, abr);
        let conn_config = ConnectionConfig {
            cc,
            ..ConnectionConfig::default()
        };
        Session {
            queue: EventQueue::new(),
            path: BottleneckPath::new(path_config),
            client_conn: Connection::new(Role::Client, conn_config.clone()),
            server_conn: Connection::new(Role::Server, conn_config),
            server: ServerApp::new(manifest, true),
            client,
            cap: SimTime::from_secs_f64(duration * 5.0 + 120.0),
            tracer: Tracer::disabled(),
            faults: None,
        }
    }

    /// Make the server VOXEL-unaware (backward-compatibility experiments).
    pub fn with_voxel_unaware_server(mut self) -> Session {
        self.server.voxel_aware = false;
        self
    }

    /// Install a seeded fault plane: every packet handed to the path (both
    /// directions) is run through it, so testkit scenarios can inject loss
    /// bursts, reordering, and duplication deterministically (DESIGN.md
    /// §11). Drops model post-bottleneck (air-interface) loss — the packet
    /// still consumed queue space and service time.
    pub fn with_faults(mut self, plane: FaultPlane) -> Session {
        self.faults = Some(plane);
        self
    }

    /// Install a tracer. One handle is shared by every layer: the client
    /// (ABR decisions, HTTP requests, player events), the server (HTTP
    /// responses), and the server-side QUIC\* connection — the data sender,
    /// whose cwnd/loss/PTO telemetry is the interesting one. Events from
    /// all layers interleave into a single per-session stream with one
    /// monotone sequence counter.
    ///
    /// Crate-private: external callers route tracing through the one
    /// [`crate::experiment::Tracing`] entry point (use `Tracing::custom`
    /// for an explicit tracer).
    pub(crate) fn with_tracer(mut self, tracer: Tracer) -> Session {
        self.server_conn.set_tracer(tracer.clone());
        self.server.set_tracer(tracer.clone());
        self.client.set_tracer(tracer.clone());
        self.tracer = tracer;
        self
    }

    /// Run to completion and produce the trial result.
    pub fn run(mut self) -> TrialResult {
        // Boot: first tick at t=0 starts the manifest fetch.
        self.queue.schedule(SimTime::ZERO, Ev::Tick);
        let mut last_tick = SimTime::ZERO;
        // Periodic loop-progress lines for interactive debugging: the old
        // raw `eprintln!` dump, now structured events through the stderr
        // sink (independent of whatever tracer the session was built with).
        let debug = if std::env::var("VOXEL_SESSION_DEBUG").is_ok() {
            Tracer::stderr(self.tracer.session_id())
        } else {
            Tracer::disabled()
        };
        let mut iters: u64 = 0;
        let mut pkts: u64 = 0;

        {
            let cfg = self.client.config();
            trace_event!(
                self.tracer,
                SimTime::ZERO,
                Layer::Session,
                "trial_start",
                "buffer_segments" = cfg.buffer_capacity_segments,
                "transport" = match cfg.transport {
                    TransportMode::Reliable => "reliable",
                    TransportMode::Split => "split",
                },
                "selective_retx" = cfg.selective_retx,
                "live" = cfg.live,
            );
        }

        loop {
            let now = self.queue.now();
            iters += 1;
            // Profiler sampling gate: free unless a voxel-obs profiler is
            // installed on this thread, and even then only 1-in-N
            // iterations take clock readings (which never touch sim state).
            voxel_obs::arm(iters);
            let _step = voxel_obs::span!("session.step");
            voxel_obs::observe("obs.queue_depth", self.queue.len() as u64);
            if iters.is_multiple_of(10_000) {
                let (seg, dl, recs) = self.client.debug_state();
                let stats = self.server_conn.stats();
                trace_event!(
                    debug,
                    now,
                    Layer::Session,
                    "progress",
                    "iters_k" = iters / 1000,
                    "pkts" = pkts,
                    "queue" = self.queue.len(),
                    "cwnd" = self.server_conn.cwnd(),
                    "seg" = seg,
                    "dl" = dl,
                    "recs" = recs,
                    "pkts_sent" = stats.packets_sent,
                    "pkts_lost" = stats.packets_lost,
                    "ptos" = stats.ptos,
                );
            }
            // Application pumps.
            {
                let _pump = voxel_obs::span!("session.pump");
                self.server.handle(now, &mut self.server_conn);
                self.client.on_wake(now, &mut self.client_conn);
            }
            #[cfg(feature = "paranoid")]
            if let Err(e) = self.client.check_invariants(now) {
                if let Some(dump) =
                    voxel_obs::dump_current(&format!("player invariant violated at {now:?}: {e}"))
                {
                    eprintln!("{dump}");
                }
                // lint: allow(panic) the paranoid layer is intentionally fatal on corruption
                panic!("player invariant violated at {now:?}: {e}");
            }
            if self.client.is_done() {
                return self.finish(now);
            }

            // Drain transmissions until neither side has anything to send.
            let _transmit = voxel_obs::span!("session.transmit");
            loop {
                let mut progressed = false;
                while let Some(p) = self.server_conn.poll_transmit(now) {
                    pkts += 1;
                    let size = p.wire_size();
                    let fate = match self.faults.as_mut() {
                        Some(plane) => plane.next_fate(now),
                        None => PacketFate::Deliver,
                    };
                    if let Some(arrival) = self.path.send_downlink(now, size) {
                        match fate {
                            PacketFate::Deliver => {
                                self.queue.schedule(arrival, Ev::ToClient(p.encode()));
                            }
                            PacketFate::Drop => {}
                            PacketFate::Delay(extra) => {
                                self.queue
                                    .schedule(arrival + extra, Ev::ToClient(p.encode()));
                            }
                            PacketFate::Duplicate(lag) => {
                                let bytes = p.encode();
                                self.queue.schedule(arrival, Ev::ToClient(bytes.clone()));
                                self.queue.schedule(arrival + lag, Ev::ToClient(bytes));
                            }
                        }
                    }
                    progressed = true;
                }
                while let Some(p) = self.client_conn.poll_transmit(now) {
                    let fate = match self.faults.as_mut() {
                        Some(plane) => plane.next_fate(now),
                        None => PacketFate::Deliver,
                    };
                    let arrival = self.path.send_uplink(now);
                    match fate {
                        PacketFate::Deliver => {
                            self.queue.schedule(arrival, Ev::ToServer(p.encode()));
                        }
                        PacketFate::Drop => {}
                        PacketFate::Delay(extra) => {
                            self.queue
                                .schedule(arrival + extra, Ev::ToServer(p.encode()));
                        }
                        PacketFate::Duplicate(lag) => {
                            let bytes = p.encode();
                            self.queue.schedule(arrival, Ev::ToServer(bytes.clone()));
                            self.queue.schedule(arrival + lag, Ev::ToServer(bytes));
                        }
                    }
                    progressed = true;
                }
                if !progressed {
                    break;
                }
            }
            drop(_transmit);

            // Keep exactly one player tick armed ~100 ms out.
            if last_tick <= now {
                if let Some(wake) = self.client.next_wake(now) {
                    last_tick = wake;
                    self.queue.schedule(wake, Ev::Tick);
                }
            }

            // Next event: queue, or a transport timer.
            let timer_c = self.client_conn.next_timeout();
            let timer_s = self.server_conn.next_timeout();
            let next = [self.queue.peek_time(), timer_c, timer_s]
                .into_iter()
                .flatten()
                .min();
            let Some(next) = next else {
                // Nothing pending at all: force a tick so the player can
                // re-evaluate (e.g. waiting out a buffer-full period).
                let t = self.queue.now() + SimDuration::from_millis(100);
                self.queue.schedule(t, Ev::Tick);
                continue;
            };
            if next > self.cap {
                // Safety cap: freeze what we have.
                let cap = self.cap;
                return self.finish(cap);
            }

            // Deliver everything due at `next`.
            let _deliver = voxel_obs::span!("session.deliver");
            if timer_c.is_some_and(|t| t <= next) {
                // Advance queue time via a synthetic tick if needed.
                self.client_conn.on_timeout(next);
            }
            if timer_s.is_some_and(|t| t <= next) {
                self.server_conn.on_timeout(next);
            }
            while self.queue.peek_time() == Some(next) {
                let Some(ev) = self.queue.pop() else {
                    break;
                };
                match ev.event {
                    Ev::ToClient(d) => self.client_conn.on_datagram(next, d),
                    Ev::ToServer(d) => self.server_conn.on_datagram(next, d),
                    Ev::Tick => {}
                }
            }
            // If only timers fired (queue still in the past), bump the
            // queue's clock with a no-op event.
            if self.queue.now() < next {
                self.queue.schedule(next, Ev::Tick);
                self.queue.pop();
            }
        }
    }

    /// Close out the trial: emit the end-of-session event, snapshot the
    /// metrics registry, attach transport statistics, and flush the sink.
    fn finish(self, now: SimTime) -> TrialResult {
        let stats = self.server_conn.stats();
        let client_stats = self.client_conn.stats();
        trace_event!(
            self.tracer,
            now,
            Layer::Session,
            "trial_end",
            "packets_sent" = stats.packets_sent,
            "packets_lost" = stats.packets_lost,
            "loss_events" = stats.loss_events,
            "ptos" = stats.ptos,
            "bytes_sent" = stats.bytes_sent,
        );
        let snapshot = self.tracer.metrics_snapshot(now);
        let mut r = self.client.into_result(now);
        r.transport = TransportStats {
            packets_sent: stats.packets_sent,
            packets_lost: stats.packets_lost,
            loss_events: stats.loss_events,
            ptos: stats.ptos,
            bytes_sent: stats.bytes_sent,
            bytes_retransmitted: stats.bytes_retransmitted,
            mean_cwnd_bytes: snapshot
                .as_ref()
                .and_then(|s| s.histogram("quic.cwnd_bytes"))
                .map(|h| h.mean)
                .unwrap_or(self.server_conn.cwnd() as f64),
            mean_srtt_ms: snapshot
                .as_ref()
                .and_then(|s| s.histogram("quic.srtt_us"))
                .map(|h| h.mean / 1e3)
                .unwrap_or_else(|| self.server_conn.srtt().as_secs_f64() * 1e3),
            client_packets_received: client_stats.packets_received,
            client_packets_duplicate: client_stats.packets_duplicate,
            client_packets_reordered: client_stats.packets_reordered,
        };
        r.metrics = snapshot;
        self.tracer.flush();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::TransportMode;
    use voxel_abr::{AbrStar, Bola};
    use voxel_media::content::VideoId;
    use voxel_media::ladder::QualityLevel;
    use voxel_netem::BandwidthTrace;

    fn setup(levels: &[QualityLevel]) -> (Arc<Manifest>, Arc<Video>, QoeModel) {
        let video = Video::generate(VideoId::Bbb);
        let qoe = QoeModel::default();
        let manifest = Arc::new(Manifest::prepare_levels(&video, &qoe, levels));
        (manifest, Arc::new(video), qoe)
    }

    #[test]
    fn bola_over_fat_pipe_plays_without_stalls() {
        let (manifest, video, qoe) = setup(&[]);
        let path = PathConfig::new(BandwidthTrace::constant(50.0, 600), 64);
        let session = Session::new(
            path,
            manifest,
            video,
            qoe,
            Box::new(Bola::new()),
            PlayerConfig::new(7, TransportMode::Reliable),
        );
        let r = session.run();
        assert_eq!(r.segment_scores.len(), 75);
        assert!(r.buf_ratio_pct() < 1.0, "bufRatio {}", r.buf_ratio_pct());
        // 50 Mbps is plenty for Q12: the mean delivered bitrate should be
        // high.
        assert!(
            r.avg_bitrate_kbps() > 5_000.0,
            "bitrate {}",
            r.avg_bitrate_kbps()
        );
        assert!(r.avg_ssim() > 0.98, "ssim {}", r.avg_ssim());
    }

    #[test]
    fn voxel_over_fat_pipe_is_clean_too() {
        let (manifest, video, qoe) = setup(&[QualityLevel::MAX]);
        let path = PathConfig::new(BandwidthTrace::constant(50.0, 600), 64);
        let session = Session::new(
            path,
            manifest,
            video,
            qoe,
            Box::new(AbrStar::default()),
            PlayerConfig::new(7, TransportMode::Split),
        );
        let r = session.run();
        assert_eq!(r.segment_scores.len(), 75);
        assert!(r.buf_ratio_pct() < 1.0, "bufRatio {}", r.buf_ratio_pct());
        assert!(r.avg_ssim() > 0.97, "ssim {}", r.avg_ssim());
    }

    #[test]
    fn starvation_produces_stalls_not_hangs() {
        let (manifest, video, qoe) = setup(&[]);
        // 0.1 Mbps cannot sustain even Q0 (0.16 Mbps average).
        let path = PathConfig::new(BandwidthTrace::constant(0.1, 3600), 32);
        let session = Session::new(
            path,
            manifest,
            video,
            qoe,
            Box::new(Bola::new()),
            PlayerConfig::new(3, TransportMode::Reliable),
        );
        let r = session.run();
        assert!(r.buf_ratio_pct() > 5.0, "bufRatio {}", r.buf_ratio_pct());
    }
}

#[cfg(test)]
mod stall_accounting_tests {
    use super::*;
    use crate::client::TransportMode;
    use voxel_abr::ThroughputAbr;
    use voxel_media::content::VideoId;
    use voxel_media::ladder::QualityLevel;
    use voxel_netem::BandwidthTrace;

    /// Engineer exactly one bandwidth blackout mid-session and verify the
    /// stall accounting brackets it: the playback gap must be close to the
    /// blackout length minus the buffered content.
    #[test]
    fn one_blackout_produces_a_bounded_stall() {
        let video = Video::generate(VideoId::Bbb);
        let qoe = QoeModel::default();
        let manifest = Arc::new(Manifest::prepare_levels(&video, &qoe, &[]));
        // 8 Mbps, with a 12-second blackout starting at t = 60 s.
        let mut rates = vec![8.0; 600];
        for r in rates.iter_mut().skip(60).take(12) {
            *r = 0.05;
        }
        let trace = BandwidthTrace::new("blackout", rates);
        let session = Session::new(
            PathConfig::new(trace, 32),
            manifest,
            Arc::new(video),
            qoe,
            Box::new(ThroughputAbr::default()),
            PlayerConfig::new(2, TransportMode::Reliable),
        );
        let r = session.run();
        assert_eq!(r.segment_scores.len(), 75);
        // The blackout is 12 s against at most 8 s of buffer: at least a
        // couple of seconds must register, and never more than the
        // blackout itself plus one segment of slack.
        assert!(
            r.stall_s >= 2.0,
            "expected a visible stall, got {}",
            r.stall_s
        );
        assert!(
            r.stall_s <= 16.0,
            "stall {} exceeds the blackout + slack",
            r.stall_s
        );
    }

    /// The safety cap fires (and still yields a well-formed result) when
    /// the network is a trickle that can never finish the session.
    #[test]
    fn cap_yields_partial_but_wellformed_result() {
        let video = Video::generate(VideoId::Bbb);
        let qoe = QoeModel::default();
        let manifest = Arc::new(Manifest::prepare_levels(&video, &qoe, &[]));
        let trace = BandwidthTrace::constant(0.05, 3600);
        let session = Session::new(
            PathConfig::new(trace, 32),
            manifest,
            Arc::new(video),
            qoe,
            Box::new(ThroughputAbr::default()),
            PlayerConfig::new(2, TransportMode::Reliable),
        );
        let r = session.run();
        // Whether the cap fired or the trickle crawled through, the result
        // must be well-formed (every record frozen and scored) and the
        // session must register severe rebuffering.
        assert!(r.segment_scores.len() <= 75);
        assert_eq!(r.segment_kbps.len(), r.segment_scores.len());
        assert!(
            r.buf_ratio_pct() > 50.0,
            "a 0.05 Mbps link must stall heavily, got {}%",
            r.buf_ratio_pct()
        );
    }

    /// Quality levels requested monotonically follow a rising staircase
    /// trace (sanity of the whole ABR/throughput feedback loop).
    #[test]
    fn staircase_trace_raises_delivered_quality() {
        let video = Video::generate(VideoId::Tos);
        let qoe = QoeModel::default();
        let manifest = Arc::new(Manifest::prepare_levels(&video, &qoe, &[]));
        let mut rates = Vec::new();
        for step in 0..5 {
            rates.extend(std::iter::repeat_n(1.0 + step as f64 * 3.0, 60));
        }
        let trace = BandwidthTrace::new("staircase", rates);
        let session = Session::new(
            PathConfig::new(trace, 32),
            manifest,
            Arc::new(video),
            qoe,
            Box::new(ThroughputAbr::default()),
            PlayerConfig::new(3, TransportMode::Reliable),
        );
        let r = session.run();
        assert_eq!(r.segment_scores.len(), 75);
        // Mean delivered bitrate in the last fifth ≫ first fifth.
        let first: f64 = r.segment_kbps[..15].iter().sum::<f64>() / 15.0;
        let last: f64 = r.segment_kbps[60..].iter().sum::<f64>() / 15.0;
        assert!(
            last > first * 2.0,
            "bitrate did not climb the staircase: {first} -> {last}"
        );
        let _ = QualityLevel::MAX; // staircase is about delivered bits
    }
}
