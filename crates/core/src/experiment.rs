//! Experiment configurations and the §5 protocol.
//!
//! "An experiment involves streaming a video from a server to a client via
//! the router, under a fixed configuration. A configuration specifies the
//! ABR algorithm, buffer size, video, and network trace. Unless otherwise
//! stated, we repeat each experiment 30 times … For each repetition we
//! linearly shift the network trace by d/30 s."

use crate::client::{PlayerConfig, TransportMode};
use crate::metrics::{Aggregate, TrialResult};
use crate::session::Session;
use std::collections::BTreeMap;
use std::sync::Arc;
use voxel_abr::{Abr, AbrStar, Beta, Bola, BolaSsim, Mpc, MpcStar, ThroughputAbr};
use voxel_media::content::VideoId;
use voxel_media::qoe::{QoeMetric, QoeModel};
use voxel_media::video::Video;
use voxel_netem::{BandwidthTrace, FaultPlane, PathConfig};
use voxel_prep::manifest::Manifest;
use voxel_quic::CcKind;
use voxel_sim::SimDuration;
use voxel_trace::Tracer;

/// Whether (and where) trials emit their cross-layer event timeline.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// No tracing: the null path, zero overhead on the session hot loop.
    #[default]
    Off,
    /// Human-readable event lines on stderr (interactive debugging).
    Stderr,
    /// One JSONL timeline (`trial-<shift>.jsonl`) plus one metrics
    /// snapshot (`trial-<shift>.metrics.json`) per trial, under `dir`.
    Jsonl {
        /// Output directory; created if missing.
        dir: std::path::PathBuf,
    },
}

/// Which ABR algorithm a configuration runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AbrKind {
    /// Naive throughput matching.
    Tput,
    /// BOLA-E (state of the art).
    Bola,
    /// Robust MPC.
    Mpc,
    /// MPC\* — MPC with the curbed virtual-level search space (§4.3
    /// discussion, implemented here as an extension).
    MpcStar,
    /// BETA (reliable transport, b-frame tail).
    Beta,
    /// BOLA-SSIM (§4.3 intermediate).
    BolaSsim,
    /// ABR\* = VOXEL, with a bandwidth-safety factor and QoE metric.
    Voxel {
        /// Bandwidth-safety factor (1.0 aggressive; ≈0.85 tuned).
        safety: f64,
        /// QoE metric the utility optimizes.
        metric: QoeMetric,
    },
}

impl AbrKind {
    /// VOXEL with default (aggressive) tuning and SSIM utility.
    pub fn voxel() -> AbrKind {
        AbrKind::Voxel {
            safety: 1.0,
            metric: QoeMetric::Ssim,
        }
    }

    /// VOXEL with the Fig 6d "less aggressive" bandwidth-safety tuning.
    pub fn voxel_tuned() -> AbrKind {
        AbrKind::Voxel {
            safety: 0.85,
            metric: QoeMetric::Ssim,
        }
    }

    /// Instantiate the algorithm.
    pub fn make(&self) -> Box<dyn Abr> {
        match *self {
            AbrKind::Tput => Box::new(ThroughputAbr::default()),
            AbrKind::Bola => Box::new(Bola::new()),
            AbrKind::Mpc => Box::new(Mpc::default()),
            AbrKind::MpcStar => Box::new(MpcStar::default()),
            AbrKind::Beta => Box::new(Beta::new()),
            AbrKind::BolaSsim => Box::new(BolaSsim::default()),
            AbrKind::Voxel { safety, metric } => Box::new(AbrStar::with_safety(metric, safety)),
        }
    }

    /// Display name for figure rows.
    pub fn label(&self) -> String {
        match self {
            AbrKind::Tput => "Tput".into(),
            AbrKind::Bola => "BOLA".into(),
            AbrKind::Mpc => "MPC".into(),
            AbrKind::MpcStar => "MPC*".into(),
            AbrKind::Beta => "BETA".into(),
            AbrKind::BolaSsim => "BOLA-SSIM".into(),
            AbrKind::Voxel { metric, safety } => {
                let m = match metric {
                    QoeMetric::Ssim => "",
                    QoeMetric::Vmaf => "/VMAF",
                    QoeMetric::Psnr => "/PSNR",
                };
                if *safety < 1.0 {
                    format!("VOXEL{m} (tuned)")
                } else {
                    format!("VOXEL{m}")
                }
            }
        }
    }

    /// The transport this algorithm is evaluated with by default.
    pub fn default_transport(&self) -> TransportMode {
        match self {
            AbrKind::Beta => TransportMode::Reliable,
            AbrKind::Voxel { .. } | AbrKind::BolaSsim | AbrKind::MpcStar => TransportMode::Split,
            // Vanilla ABRs default to vanilla QUIC; §5.1 overrides to Split.
            _ => TransportMode::Reliable,
        }
    }
}

/// A full experiment configuration.
#[derive(Clone)]
pub struct Config {
    /// The video to stream.
    pub video: VideoId,
    /// The ABR algorithm.
    pub abr: AbrKind,
    /// Transport mode (defaults from the ABR; §5.1 overrides it).
    pub transport: TransportMode,
    /// Playback buffer capacity in segments.
    pub buffer_segments: usize,
    /// The bandwidth trace.
    pub trace: BandwidthTrace,
    /// Droptail queue length in packets (the paper's trace experiments use
    /// 32; Appendix B uses 750).
    pub queue_packets: usize,
    /// Number of trials (30 in the paper).
    pub trials: usize,
    /// Disable selective retransmission (and partial reliability stays per
    /// `transport`).
    pub selective_retx: bool,
    /// Congestion controller (CUBIC = the paper; Delay = Appendix B
    /// future-work ablation).
    pub cc: CcKind,
    /// Per-trial event tracing (off by default).
    pub tracing: TraceMode,
    /// Testkit canary (DESIGN.md §11): deliberately skew the player's
    /// stall accounting so the conformance sweep's drift oracle has a
    /// known-bad target. Never enable in real experiments.
    pub debug_stall_skew: bool,
}

impl Config {
    /// A §5-style configuration with the paper's defaults.
    pub fn new(
        video: VideoId,
        abr: AbrKind,
        buffer_segments: usize,
        trace: BandwidthTrace,
    ) -> Config {
        Config {
            video,
            transport: abr.default_transport(),
            abr,
            buffer_segments,
            trace,
            queue_packets: 32,
            trials: 30,
            selective_retx: true,
            cc: CcKind::Cubic,
            tracing: TraceMode::default(),
            debug_stall_skew: false,
        }
    }

    /// Override the transport (e.g. vanilla ABRs over QUIC\*, §5.1).
    pub fn with_transport(mut self, t: TransportMode) -> Config {
        self.transport = t;
        self
    }

    /// Override the trial count (the bench harness's fast mode).
    pub fn with_trials(mut self, n: usize) -> Config {
        self.trials = n;
        self
    }

    /// Override the queue length.
    pub fn with_queue(mut self, packets: usize) -> Config {
        self.queue_packets = packets;
        self
    }

    /// Disable selective retransmission.
    pub fn without_retx(mut self) -> Config {
        self.selective_retx = false;
        self
    }

    /// Use the delay-based congestion controller (Appendix B ablation).
    pub fn with_delay_cc(mut self) -> Config {
        self.cc = CcKind::Delay;
        self
    }

    /// Emit per-trial JSONL timelines and metrics snapshots under `dir`.
    pub fn with_trace_jsonl(mut self, dir: impl Into<std::path::PathBuf>) -> Config {
        self.tracing = TraceMode::Jsonl { dir: dir.into() };
        self
    }

    /// Emit human-readable trace lines on stderr.
    pub fn with_trace_stderr(mut self) -> Config {
        self.tracing = TraceMode::Stderr;
        self
    }
}

/// Cache of prepared manifests (the offline §4.1 computation is one-time
/// per video, exactly as the paper argues).
#[derive(Default)]
pub struct ContentCache {
    entries: BTreeMap<VideoId, (Arc<Manifest>, Arc<Video>)>,
    qoe: QoeModel,
}

impl ContentCache {
    /// Empty cache with the default QoE model.
    pub fn new() -> ContentCache {
        ContentCache {
            entries: BTreeMap::new(),
            qoe: QoeModel::default(),
        }
    }

    /// The QoE model used for preparation and scoring.
    pub fn qoe(&self) -> QoeModel {
        self.qoe.clone()
    }

    /// Get (or prepare) a video + manifest.
    pub fn get(&mut self, id: VideoId) -> (Arc<Manifest>, Arc<Video>) {
        let qoe = self.qoe.clone();
        self.entries
            .entry(id)
            .or_insert_with(|| {
                let video = Video::generate(id);
                let manifest = Arc::new(Manifest::prepare(&video, &qoe));
                (manifest, Arc::new(video))
            })
            .clone()
    }
}

/// Run one trial of `config` with the trace shifted by `shift_s`.
pub fn run_trial(config: &Config, cache: &mut ContentCache, shift_s: usize) -> TrialResult {
    let (manifest, video) = cache.get(config.video);
    run_prepared_trial(config, &manifest, &video, &cache.qoe(), shift_s)
}

/// The full §5 protocol: `config.trials` repetitions with the trace
/// linearly shifted by `d/trials` per repetition.
///
/// Trials are independent deterministic simulations, so they run on a
/// thread per core; results are ordered by shift regardless of completion
/// order, keeping the aggregate bit-identical to a serial run.
pub fn run_config(config: &Config, cache: &mut ContentCache) -> Aggregate {
    let d = config.trace.duration_s();
    let n = config.trials.max(1);
    // Prepare the content once, up front, on this thread.
    let (manifest, video) = cache.get(config.video);
    let qoe = cache.qoe();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<TrialResult>> = (0..n).map(|_| None).collect();
    let slot_refs: Vec<std::sync::Mutex<&mut Option<TrialResult>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = run_prepared_trial(config, &manifest, &video, &qoe, i * d / n);
                **slot_refs[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
            });
        }
    });
    // lint: allow(panic) scoped threads joined above; every slot was written
    Aggregate::new(slots.into_iter().map(|s| s.expect("trial ran")).collect())
}

/// One trial against already-prepared content.
fn run_prepared_trial(
    config: &Config,
    manifest: &Arc<Manifest>,
    video: &Arc<Video>,
    qoe: &QoeModel,
    shift_s: usize,
) -> TrialResult {
    // The trace-shift doubles as the session id: it uniquely names the
    // trial within a configuration and keeps identically-seeded runs
    // byte-identical.
    let tracer = match &config.tracing {
        TraceMode::Off => Tracer::disabled(),
        TraceMode::Stderr => Tracer::stderr(shift_s as u64),
        TraceMode::Jsonl { dir } => {
            let _ = std::fs::create_dir_all(dir);
            let path = dir.join(format!("trial-{shift_s:04}.jsonl"));
            Tracer::jsonl(shift_s as u64, &path).unwrap_or_else(|e| {
                eprintln!(
                    "warning: cannot write timeline {}: {e}; tracing disabled",
                    path.display()
                );
                Tracer::disabled()
            })
        }
    };
    let r = run_instrumented_trial(config, manifest, video, qoe, shift_s, tracer, None);
    if let (TraceMode::Jsonl { dir }, Some(snap)) = (&config.tracing, &r.metrics) {
        let _ = std::fs::write(
            dir.join(format!("trial-{shift_s:04}.metrics.json")),
            snap.to_json(),
        );
    }
    r
}

/// One trial with an explicit tracer and optional packet fault plane.
///
/// This is the testkit entry point: `voxel-testkit` captures timelines
/// into in-memory buffers (for oracles and golden digests) and injects
/// seeded packet faults, neither of which [`TraceMode`] models. Everything
/// else — path shaping, player wiring, ABR instantiation — is identical to
/// [`run_trial`], so conformance scenarios exercise the same code path as
/// real experiments.
pub fn run_instrumented_trial(
    config: &Config,
    manifest: &Arc<Manifest>,
    video: &Arc<Video>,
    qoe: &QoeModel,
    shift_s: usize,
    tracer: Tracer,
    faults: Option<FaultPlane>,
) -> TrialResult {
    let trace = config.trace.shift(shift_s);
    let mut path = PathConfig::new(trace, config.queue_packets);
    path.delay_down = SimDuration::from_millis(30);
    let mut player = PlayerConfig::new(config.buffer_segments, config.transport);
    player.selective_retx = config.selective_retx && config.transport == TransportMode::Split;
    player.debug_stall_skew = config.debug_stall_skew;
    let mut session = Session::with_cc(
        path,
        manifest.clone(),
        video.clone(),
        qoe.clone(),
        config.abr.make(),
        player,
        config.cc,
    )
    .with_tracer(tracer);
    if let Some(plane) = faults {
        session = session.with_faults(plane);
    }
    let mut r = session.run();
    r.abr = config.abr.label();
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abr_kinds_instantiate_with_expected_names() {
        for (kind, name) in [
            (AbrKind::Tput, "Tput"),
            (AbrKind::Bola, "BOLA"),
            (AbrKind::Mpc, "MPC"),
            (AbrKind::Beta, "BETA"),
            (AbrKind::BolaSsim, "BOLA-SSIM"),
            (AbrKind::voxel(), "VOXEL"),
        ] {
            assert_eq!(kind.make().name(), name);
        }
    }

    #[test]
    fn default_transports_match_the_paper() {
        assert_eq!(AbrKind::Beta.default_transport(), TransportMode::Reliable);
        assert_eq!(AbrKind::Bola.default_transport(), TransportMode::Reliable);
        assert_eq!(AbrKind::voxel().default_transport(), TransportMode::Split);
    }

    #[test]
    fn labels_distinguish_tuning_and_metric() {
        assert_eq!(AbrKind::voxel().label(), "VOXEL");
        assert_eq!(AbrKind::voxel_tuned().label(), "VOXEL (tuned)");
        let vmaf = AbrKind::Voxel {
            safety: 1.0,
            metric: QoeMetric::Vmaf,
        };
        assert_eq!(vmaf.label(), "VOXEL/VMAF");
    }

    #[test]
    fn config_builders_apply() {
        let c = Config::new(
            VideoId::Bbb,
            AbrKind::Bola,
            3,
            BandwidthTrace::constant(10.0, 300),
        )
        .with_transport(TransportMode::Split)
        .with_trials(5)
        .with_queue(750)
        .without_retx();
        assert_eq!(c.transport, TransportMode::Split);
        assert_eq!(c.trials, 5);
        assert_eq!(c.queue_packets, 750);
        assert!(!c.selective_retx);
    }

    #[test]
    fn cache_prepares_once() {
        let mut cache = ContentCache::new();
        let (m1, _) = cache.get(VideoId::YouTube(9));
        let (m2, _) = cache.get(VideoId::YouTube(9));
        assert!(Arc::ptr_eq(&m1, &m2));
    }
}
