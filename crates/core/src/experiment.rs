//! Experiment configurations and the §5 protocol.
//!
//! "An experiment involves streaming a video from a server to a client via
//! the router, under a fixed configuration. A configuration specifies the
//! ABR algorithm, buffer size, video, and network trace. Unless otherwise
//! stated, we repeat each experiment 30 times … For each repetition we
//! linearly shift the network trace by d/30 s."
//!
//! The entry point is [`Experiment::builder`]: a fluent builder covering
//! every knob (ABR, transport, buffer, trace, queue, trials, congestion
//! control, tracing, fleet size) with the paper's defaults. It is the
//! only construction surface — the legacy `Config` constructor chain and
//! free-function runners were removed after a deprecation cycle.

use crate::client::{PlayerConfig, TransportMode};
pub use crate::content::ContentCache;
use crate::metrics::{Aggregate, TrialResult};
use crate::session::Session;
use std::fmt;
use std::sync::Arc;
use voxel_abr::{Abr, AbrStar, Beta, Bola, BolaSsim, Mpc, MpcStar, ThroughputAbr};
use voxel_media::content::VideoId;
use voxel_media::qoe::{QoeMetric, QoeModel};
use voxel_media::video::Video;
use voxel_netem::{BandwidthTrace, Discipline, FaultPlane, PathConfig};
use voxel_prep::manifest::Manifest;
use voxel_quic::CcKind;
use voxel_sim::SimDuration;
use voxel_trace::Tracer;

/// Whether (and where) trials emit their cross-layer event timeline.
///
/// This is the single tracing entry point: the builder consumes it, and
/// every path that used to exist separately (`TraceMode` on the config,
/// `Session::with_tracer`, `Config::with_trace_jsonl`) routes through it.
/// The trace shift of a trial doubles as its session id.
#[derive(Clone, Default)]
pub enum Tracing {
    /// No tracing: the null path, zero overhead on the session hot loop.
    #[default]
    Off,
    /// Human-readable event lines on stderr (interactive debugging).
    Stderr,
    /// One JSONL timeline (`trial-<shift>.jsonl`) plus one metrics
    /// snapshot (`trial-<shift>.metrics.json`) per trial, under `dir`.
    Jsonl {
        /// Output directory; created if missing.
        dir: std::path::PathBuf,
    },
    /// A caller-supplied tracer factory, invoked once per trial with the
    /// session id (the trace shift). This is how the testkit captures
    /// timelines into in-memory buffers.
    Custom(Arc<dyn Fn(u64) -> Tracer + Send + Sync>),
}

impl fmt::Debug for Tracing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tracing::Off => f.write_str("Off"),
            Tracing::Stderr => f.write_str("Stderr"),
            Tracing::Jsonl { dir } => f.debug_struct("Jsonl").field("dir", dir).finish(),
            Tracing::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

impl Tracing {
    /// JSONL timelines + metrics snapshots under `dir`.
    pub fn jsonl(dir: impl Into<std::path::PathBuf>) -> Tracing {
        Tracing::Jsonl { dir: dir.into() }
    }

    /// A custom per-trial tracer factory (receives the session id).
    pub fn custom(f: impl Fn(u64) -> Tracer + Send + Sync + 'static) -> Tracing {
        Tracing::Custom(Arc::new(f))
    }

    /// The tracer for the trial at `shift_s`.
    pub(crate) fn tracer_for(&self, shift_s: usize) -> Tracer {
        match self {
            Tracing::Off => Tracer::disabled(),
            Tracing::Stderr => Tracer::stderr(shift_s as u64),
            Tracing::Jsonl { dir } => {
                let _ = std::fs::create_dir_all(dir);
                let path = dir.join(format!("trial-{shift_s:04}.jsonl"));
                Tracer::jsonl(shift_s as u64, &path).unwrap_or_else(|e| {
                    eprintln!(
                        "warning: cannot write timeline {}: {e}; tracing disabled",
                        path.display()
                    );
                    Tracer::disabled()
                })
            }
            Tracing::Custom(f) => f(shift_s as u64),
        }
    }

    /// Post-trial side output (the JSONL mode's metrics snapshot).
    pub(crate) fn write_sidecar(&self, shift_s: usize, result: &TrialResult) {
        if let (Tracing::Jsonl { dir }, Some(snap)) = (self, &result.metrics) {
            let _ = std::fs::write(
                dir.join(format!("trial-{shift_s:04}.metrics.json")),
                snap.to_json(),
            );
        }
    }
}

/// Which ABR algorithm a configuration runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AbrKind {
    /// Naive throughput matching.
    Tput,
    /// BOLA-E (state of the art).
    Bola,
    /// Robust MPC.
    Mpc,
    /// MPC\* — MPC with the curbed virtual-level search space (§4.3
    /// discussion, implemented here as an extension).
    MpcStar,
    /// BETA (reliable transport, b-frame tail).
    Beta,
    /// BOLA-SSIM (§4.3 intermediate).
    BolaSsim,
    /// ABR\* = VOXEL, with a bandwidth-safety factor and QoE metric.
    Voxel {
        /// Bandwidth-safety factor (1.0 aggressive; ≈0.85 tuned).
        safety: f64,
        /// QoE metric the utility optimizes.
        metric: QoeMetric,
    },
}

impl AbrKind {
    /// VOXEL with default (aggressive) tuning and SSIM utility.
    pub fn voxel() -> AbrKind {
        AbrKind::Voxel {
            safety: 1.0,
            metric: QoeMetric::Ssim,
        }
    }

    /// VOXEL with the Fig 6d "less aggressive" bandwidth-safety tuning.
    pub fn voxel_tuned() -> AbrKind {
        AbrKind::Voxel {
            safety: 0.85,
            metric: QoeMetric::Ssim,
        }
    }

    /// Instantiate the algorithm.
    pub fn make(&self) -> Box<dyn Abr> {
        match *self {
            AbrKind::Tput => Box::new(ThroughputAbr::default()),
            AbrKind::Bola => Box::new(Bola::new()),
            AbrKind::Mpc => Box::new(Mpc::default()),
            AbrKind::MpcStar => Box::new(MpcStar::default()),
            AbrKind::Beta => Box::new(Beta::new()),
            AbrKind::BolaSsim => Box::new(BolaSsim::default()),
            AbrKind::Voxel { safety, metric } => Box::new(AbrStar::with_safety(metric, safety)),
        }
    }

    /// Display name for figure rows.
    pub fn label(&self) -> String {
        match self {
            AbrKind::Tput => "Tput".into(),
            AbrKind::Bola => "BOLA".into(),
            AbrKind::Mpc => "MPC".into(),
            AbrKind::MpcStar => "MPC*".into(),
            AbrKind::Beta => "BETA".into(),
            AbrKind::BolaSsim => "BOLA-SSIM".into(),
            AbrKind::Voxel { metric, safety } => {
                let m = match metric {
                    QoeMetric::Ssim => "",
                    QoeMetric::Vmaf => "/VMAF",
                    QoeMetric::Psnr => "/PSNR",
                };
                if *safety < 1.0 {
                    format!("VOXEL{m} (tuned)")
                } else {
                    format!("VOXEL{m}")
                }
            }
        }
    }

    /// The transport this algorithm is evaluated with by default.
    pub fn default_transport(&self) -> TransportMode {
        match self {
            AbrKind::Beta => TransportMode::Reliable,
            AbrKind::Voxel { .. } | AbrKind::BolaSsim | AbrKind::MpcStar => TransportMode::Split,
            // Vanilla ABRs default to vanilla QUIC; §5.1 overrides to Split.
            _ => TransportMode::Reliable,
        }
    }
}

/// A full experiment configuration.
///
/// Assembled through [`Experiment::builder`]; the fields stay public for
/// inspection.
#[derive(Clone)]
pub struct Config {
    /// The video to stream.
    pub video: VideoId,
    /// The ABR algorithm.
    pub abr: AbrKind,
    /// Transport mode (defaults from the ABR; §5.1 overrides it).
    pub transport: TransportMode,
    /// Playback buffer capacity in segments.
    pub buffer_segments: usize,
    /// The bandwidth trace.
    pub trace: BandwidthTrace,
    /// Droptail queue length in packets (the paper's trace experiments use
    /// 32; Appendix B uses 750).
    pub queue_packets: usize,
    /// Number of trials (30 in the paper).
    pub trials: usize,
    /// Disable selective retransmission (and partial reliability stays per
    /// `transport`).
    pub selective_retx: bool,
    /// Congestion controller (CUBIC = the paper; Delay = Appendix B
    /// future-work ablation).
    pub cc: CcKind,
    /// Per-trial event tracing (off by default).
    pub tracing: Tracing,
    /// Testkit canary (DESIGN.md §11): deliberately skew the player's
    /// stall accounting so the conformance sweep's drift oracle has a
    /// known-bad target. Never enable in real experiments.
    pub debug_stall_skew: bool,
    /// Scheduling discipline of the shared bottleneck queue, effective
    /// only for fleet runs (`.fleet(n)` with `n > 1`); single-session
    /// paths own the whole bottleneck. DRR by default.
    pub discipline: Discipline,
    /// Shard worker threads for fleet runs. `None` defers to the
    /// `VOXEL_SHARD_WORKERS` environment knob (default 1). A performance
    /// knob only: results are byte-identical at every worker count.
    pub workers: Option<usize>,
}

/// Fluent builder for [`Experiment`]s, with the paper's §5 defaults:
/// Big Buck Bunny, VOXEL over split transport, a 3-segment buffer, a
/// constant 8 Mbit/s 300 s trace, a 32-packet queue, 30 trials, CUBIC,
/// tracing off, a single session.
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    video: VideoId,
    abr: AbrKind,
    transport: Option<TransportMode>,
    buffer_segments: usize,
    trace: BandwidthTrace,
    queue_packets: usize,
    trials: usize,
    selective_retx: bool,
    cc: CcKind,
    tracing: Tracing,
    debug_stall_skew: bool,
    discipline: Discipline,
    workers: Option<usize>,
    fleet: usize,
}

impl Default for ExperimentBuilder {
    fn default() -> ExperimentBuilder {
        ExperimentBuilder {
            video: VideoId::Bbb,
            abr: AbrKind::voxel(),
            transport: None,
            buffer_segments: 3,
            trace: BandwidthTrace::constant(8.0, 300),
            queue_packets: 32,
            trials: 30,
            selective_retx: true,
            cc: CcKind::Cubic,
            tracing: Tracing::Off,
            debug_stall_skew: false,
            discipline: Discipline::drr(),
            workers: None,
            fleet: 1,
        }
    }
}

impl ExperimentBuilder {
    /// The video to stream.
    pub fn video(mut self, video: VideoId) -> Self {
        self.video = video;
        self
    }

    /// The ABR algorithm. Unless [`ExperimentBuilder::transport`] is also
    /// called, the transport follows the algorithm's paper default.
    pub fn abr(mut self, abr: AbrKind) -> Self {
        self.abr = abr;
        self
    }

    /// Override the transport (e.g. vanilla ABRs over QUIC\*, §5.1).
    pub fn transport(mut self, t: TransportMode) -> Self {
        self.transport = Some(t);
        self
    }

    /// Playback buffer capacity in segments.
    pub fn buffer(mut self, segments: usize) -> Self {
        self.buffer_segments = segments;
        self
    }

    /// The bandwidth trace.
    pub fn trace(mut self, trace: BandwidthTrace) -> Self {
        self.trace = trace;
        self
    }

    /// Droptail queue length in packets.
    pub fn queue(mut self, packets: usize) -> Self {
        self.queue_packets = packets;
        self
    }

    /// Number of trials (§5 runs 30, shifting the trace by d/30 each).
    pub fn trials(mut self, n: usize) -> Self {
        self.trials = n;
        self
    }

    /// Enable or disable selective retransmission (only effective on the
    /// split transport).
    pub fn selective_retx(mut self, on: bool) -> Self {
        self.selective_retx = on;
        self
    }

    /// Congestion controller.
    pub fn cc(mut self, cc: CcKind) -> Self {
        self.cc = cc;
        self
    }

    /// Per-trial event tracing.
    pub fn tracing(mut self, tracing: Tracing) -> Self {
        self.tracing = tracing;
        self
    }

    /// Arm the testkit's stall-accounting canary (DESIGN.md §11). Never
    /// enable in real experiments.
    pub fn debug_stall_skew(mut self, on: bool) -> Self {
        self.debug_stall_skew = on;
        self
    }

    /// Scheduling discipline of the shared bottleneck queue (fleet runs
    /// only; DRR by default, matching the paper's router model).
    pub fn discipline(mut self, discipline: Discipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Shard worker threads for fleet runs. Purely a performance knob:
    /// the fleet runtime's timelines and metrics are byte-identical at
    /// every worker count. `None` (the default) defers to the
    /// `VOXEL_SHARD_WORKERS` environment variable.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Number of concurrent sessions sharing one bottleneck link.
    /// `1` (the default) is the classic single-session experiment; larger
    /// fleets are executed by the `voxel-fleet` runtime, which consumes
    /// the built [`Experiment`].
    pub fn fleet(mut self, sessions: usize) -> Self {
        self.fleet = sessions.max(1);
        self
    }

    /// Finalize into an [`Experiment`].
    pub fn build(self) -> Experiment {
        let transport = self
            .transport
            .unwrap_or_else(|| self.abr.default_transport());
        Experiment {
            config: Config {
                video: self.video,
                abr: self.abr,
                transport,
                buffer_segments: self.buffer_segments,
                trace: self.trace,
                queue_packets: self.queue_packets,
                trials: self.trials,
                selective_retx: self.selective_retx,
                cc: self.cc,
                tracing: self.tracing,
                debug_stall_skew: self.debug_stall_skew,
                discipline: self.discipline,
                workers: self.workers,
            },
            fleet: self.fleet,
        }
    }
}

/// A fully-specified experiment, ready to run against a [`ContentCache`].
#[derive(Debug, Clone)]
pub struct Experiment {
    config: Config,
    fleet: usize,
}

impl fmt::Debug for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Config")
            .field("video", &self.video)
            .field("abr", &self.abr)
            .field("transport", &self.transport)
            .field("buffer_segments", &self.buffer_segments)
            .field("trace", &self.trace.duration_s())
            .field("queue_packets", &self.queue_packets)
            .field("trials", &self.trials)
            .field("selective_retx", &self.selective_retx)
            .field("tracing", &self.tracing)
            .finish_non_exhaustive()
    }
}

impl Experiment {
    /// Start building an experiment from the paper's defaults.
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::default()
    }

    /// The underlying configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Consume into the underlying configuration.
    pub fn into_config(self) -> Config {
        self.config
    }

    /// Concurrent sessions (1 = single-session; >1 runs via `voxel-fleet`).
    pub fn fleet_size(&self) -> usize {
        self.fleet
    }

    /// The full §5 protocol: `trials` repetitions with the trace linearly
    /// shifted by `d/trials` per repetition, run on the work-stealing
    /// trial pool; results are ordered by shift regardless of completion
    /// order, keeping the aggregate bit-identical to a serial run.
    pub fn run(&self, cache: &ContentCache) -> Aggregate {
        run_config_impl(&self.config, cache)
    }

    /// Run one trial with the trace shifted by `shift_s`.
    pub fn run_trial(&self, cache: &ContentCache, shift_s: usize) -> TrialResult {
        run_trial_impl(&self.config, cache, shift_s)
    }
}

fn run_trial_impl(config: &Config, cache: &ContentCache, shift_s: usize) -> TrialResult {
    let (manifest, video) = cache.get(config.video);
    run_prepared_trial(config, &manifest, &video, &cache.qoe(), shift_s)
}

fn run_config_impl(config: &Config, cache: &ContentCache) -> Aggregate {
    let d = config.trace.duration_s();
    let n = config.trials.max(1);
    // Prepare the content once, up front, on this thread.
    let (manifest, video) = cache.get(config.video);
    let qoe = cache.qoe();
    let workers = voxel_sim::pool::default_workers(n);
    let results = voxel_sim::pool::run_indexed(n, workers, |i| {
        run_prepared_trial(config, &manifest, &video, &qoe, i * d / n)
    });
    Aggregate::new(results)
}

/// One trial against already-prepared content.
fn run_prepared_trial(
    config: &Config,
    manifest: &Arc<Manifest>,
    video: &Arc<Video>,
    qoe: &QoeModel,
    shift_s: usize,
) -> TrialResult {
    // The trace-shift doubles as the session id: it uniquely names the
    // trial within a configuration and keeps identically-seeded runs
    // byte-identical.
    let tracer = config.tracing.tracer_for(shift_s);
    let r = run_instrumented_trial(config, manifest, video, qoe, shift_s, tracer, None);
    config.tracing.write_sidecar(shift_s, &r);
    r
}

/// One trial with an explicit tracer and optional packet fault plane.
///
/// This is the testkit entry point: `voxel-testkit` captures timelines
/// into in-memory buffers (for oracles and golden digests) and injects
/// seeded packet faults. Everything else — path shaping, player wiring,
/// ABR instantiation — is identical to [`Experiment::run_trial`], so
/// conformance scenarios exercise the same code path as real experiments.
pub fn run_instrumented_trial(
    config: &Config,
    manifest: &Arc<Manifest>,
    video: &Arc<Video>,
    qoe: &QoeModel,
    shift_s: usize,
    tracer: Tracer,
    faults: Option<FaultPlane>,
) -> TrialResult {
    let trace = config.trace.shift(shift_s);
    let mut path = PathConfig::new(trace, config.queue_packets);
    path.delay_down = SimDuration::from_millis(30);
    let mut player = PlayerConfig::new(config.buffer_segments, config.transport);
    player.selective_retx = config.selective_retx && config.transport == TransportMode::Split;
    player.debug_stall_skew = config.debug_stall_skew;
    let mut session = Session::with_cc(
        path,
        manifest.clone(),
        video.clone(),
        qoe.clone(),
        config.abr.make(),
        player,
        config.cc,
    )
    .with_tracer(tracer);
    if let Some(plane) = faults {
        session = session.with_faults(plane);
    }
    let mut r = session.run();
    r.abr = config.abr.label();
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abr_kinds_instantiate_with_expected_names() {
        for (kind, name) in [
            (AbrKind::Tput, "Tput"),
            (AbrKind::Bola, "BOLA"),
            (AbrKind::Mpc, "MPC"),
            (AbrKind::Beta, "BETA"),
            (AbrKind::BolaSsim, "BOLA-SSIM"),
            (AbrKind::voxel(), "VOXEL"),
        ] {
            assert_eq!(kind.make().name(), name);
        }
    }

    #[test]
    fn default_transports_match_the_paper() {
        assert_eq!(AbrKind::Beta.default_transport(), TransportMode::Reliable);
        assert_eq!(AbrKind::Bola.default_transport(), TransportMode::Reliable);
        assert_eq!(AbrKind::voxel().default_transport(), TransportMode::Split);
    }

    #[test]
    fn labels_distinguish_tuning_and_metric() {
        assert_eq!(AbrKind::voxel().label(), "VOXEL");
        assert_eq!(AbrKind::voxel_tuned().label(), "VOXEL (tuned)");
        let vmaf = AbrKind::Voxel {
            safety: 1.0,
            metric: QoeMetric::Vmaf,
        };
        assert_eq!(vmaf.label(), "VOXEL/VMAF");
    }

    #[test]
    fn builder_applies_every_knob() {
        let e = Experiment::builder()
            .video(VideoId::Bbb)
            .abr(AbrKind::Bola)
            .transport(TransportMode::Split)
            .buffer(5)
            .trace(BandwidthTrace::constant(10.0, 300))
            .queue(750)
            .trials(5)
            .selective_retx(false)
            .cc(CcKind::Delay)
            .discipline(Discipline::Fifo)
            .workers(2)
            .fleet(4)
            .build();
        let c = e.config();
        assert_eq!(c.transport, TransportMode::Split);
        assert_eq!(c.buffer_segments, 5);
        assert_eq!(c.trials, 5);
        assert_eq!(c.queue_packets, 750);
        assert!(!c.selective_retx);
        assert_eq!(c.cc, CcKind::Delay);
        assert_eq!(c.discipline, Discipline::Fifo);
        assert_eq!(c.workers, Some(2));
        assert_eq!(e.fleet_size(), 4);
    }

    #[test]
    fn discipline_and_workers_default_conservatively() {
        let c = Experiment::builder().build().into_config();
        assert_eq!(c.discipline, Discipline::drr());
        assert_eq!(c.workers, None);
    }

    #[test]
    fn builder_transport_defaults_follow_the_abr() {
        let bola = Experiment::builder().abr(AbrKind::Bola).build();
        assert_eq!(bola.config().transport, TransportMode::Reliable);
        let voxel = Experiment::builder().abr(AbrKind::voxel()).build();
        assert_eq!(voxel.config().transport, TransportMode::Split);
        // An explicit transport wins regardless of call order.
        let forced = Experiment::builder()
            .transport(TransportMode::Split)
            .abr(AbrKind::Bola)
            .build();
        assert_eq!(forced.config().transport, TransportMode::Split);
    }

    #[test]
    fn builder_setters_apply() {
        let built = Experiment::builder()
            .abr(AbrKind::Bola)
            .transport(TransportMode::Split)
            .trace(BandwidthTrace::constant(10.0, 300))
            .trials(5)
            .queue(750)
            .selective_retx(false)
            .build();
        let c = built.config();
        assert_eq!(c.transport, TransportMode::Split);
        assert_eq!(c.trials, 5);
        assert_eq!(c.queue_packets, 750);
        assert!(!c.selective_retx);
    }

    #[test]
    fn builder_defaults_are_the_papers_section_5() {
        let built = Experiment::builder().build();
        let b = built.config();
        assert_eq!(b.video, VideoId::Bbb);
        assert_eq!(b.abr, AbrKind::voxel());
        assert_eq!(b.transport, TransportMode::Split);
        assert_eq!(b.buffer_segments, 3);
        assert_eq!(b.queue_packets, 32);
        assert_eq!(b.trials, 30);
        assert!(b.selective_retx);
        assert_eq!(b.cc, CcKind::Cubic);
    }

    #[test]
    fn cache_prepares_once() {
        let cache = ContentCache::new();
        let (m1, _) = cache.get(VideoId::YouTube(9));
        let (m2, _) = cache.get(VideoId::YouTube(9));
        assert!(Arc::ptr_eq(&m1, &m2));
    }
}
