//! The VOXEL client: a headless DASH player over QUIC\*.
//!
//! Life cycle of a session (§4.2): fetch the manifest; then, per segment,
//! consult the ABR and issue **two requests** — the I-frame and all frame
//! headers over a reliable stream (`…/head`), and (a prefix of) the
//! remaining frame payloads in download order over an unreliable stream
//! (`…/body`, `x-voxel-unreliable`). Vanilla configurations fetch both
//! parts reliably instead. The player:
//!
//! - tracks the playback buffer and accounts stalls (bufRatio),
//! - consults the ABR mid-download for abandonment (restart vs VOXEL's
//!   keep-partial),
//! - during buffer-full idle periods, selectively re-requests lost body
//!   ranges of still-unplayed segments (§4.2 "Enabling selective
//!   retransmissions"),
//! - freezes each segment's QoE at its playback deadline, zero-padding
//!   whatever is still missing (§4.2 "Handling partially downloaded
//!   segments").

use crate::metrics::TrialResult;
use std::collections::BTreeMap;
use std::sync::Arc;
use voxel_abr::{AbandonAction, Abr, AbrContext, Decision, DownloadProgress, ThroughputEstimator};
use voxel_http::Request;
use voxel_media::ladder::QualityLevel;
use voxel_media::qoe::{LossMap, QoeModel, QoeScores};
use voxel_media::video::{Video, SEGMENT_DURATION_S};
use voxel_prep::analysis::QoePoint;
use voxel_prep::manifest::Manifest;
use voxel_quic::range::RangeSet;
use voxel_quic::{Connection, Event, Reliability, StreamId};
use voxel_sim::{SimDuration, SimTime};
use voxel_trace::{trace_event, Layer, Tracer};

/// How segment data travels (§5.1 studies these separately from the ABR).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// Vanilla QUIC: everything on reliable streams.
    Reliable,
    /// QUIC\*: I-frame + headers reliable, frame bodies unreliable.
    Split,
}

/// Player configuration.
#[derive(Debug, Clone)]
pub struct PlayerConfig {
    /// Playback buffer capacity in segments (1–7 in the paper).
    pub buffer_capacity_segments: usize,
    /// Transport mode.
    pub transport: TransportMode,
    /// Enable §4.2 selective retransmission of lost unreliable data during
    /// buffer-full periods.
    pub selective_retx: bool,
    /// Segments buffered before playback starts.
    pub startup_segments: usize,
    /// Live-edge mode: segment `i` only becomes available on the server
    /// once the encoder has produced it, at `(i+1) x 4 s` of wall-clock —
    /// the live/low-latency use case the paper's small-buffer experiments
    /// target (§1, §5 "small buffers are crucial for supporting low-latency
    /// or live-streaming-like applications").
    pub live: bool,
    /// Testkit canary (DESIGN.md §11): skew the *accounted* stall total by
    /// an extra 100 ms per stall while the trace timeline stays truthful.
    /// The conformance sweep's stall-drift oracle must catch the
    /// divergence; never enable outside that self-test.
    pub debug_stall_skew: bool,
}

impl PlayerConfig {
    /// The paper's defaults for a given buffer size.
    pub fn new(buffer_capacity_segments: usize, transport: TransportMode) -> PlayerConfig {
        PlayerConfig {
            buffer_capacity_segments,
            transport,
            selective_retx: transport == TransportMode::Split,
            startup_segments: 1,
            live: false,
            debug_stall_skew: false,
        }
    }

    /// Enable live-edge mode.
    pub fn live(mut self) -> PlayerConfig {
        self.live = true;
        self
    }

    /// Buffer capacity in seconds.
    pub fn capacity_s(&self) -> f64 {
        self.buffer_capacity_segments as f64 * SEGMENT_DURATION_S
    }
}

/// What a stream was opened for.
#[derive(Debug, Clone)]
enum FetchKind {
    Manifest,
    Head { seg: usize },
    Body { seg: usize },
    Retx { seg: usize, ranges: Vec<(u64, u64)> },
}

/// An in-flight segment download.
#[derive(Debug)]
struct Download {
    seg: usize,
    level: QualityLevel,
    /// Bytes requested on the body stream.
    body_goal: u64,
    head_stream: StreamId,
    body_stream: StreamId,
    head_done: bool,
    body_fin_seen: bool,
    started: SimTime,
    /// Times this segment was restarted (for stats).
    restarts_here: u32,
}

/// Delivery state of a segment, kept until its QoE is frozen.
#[derive(Debug)]
struct SegmentRecord {
    seg: usize,
    level: QualityLevel,
    target: QoePoint,
    body_goal: u64,
    /// Received body-offset ranges.
    received: RangeSet,
    /// Use BETA's download order when mapping offsets to frames.
    beta_order: bool,
    /// When this segment starts playing.
    play_start: SimTime,
    scores: Option<QoeScores>,
    /// Stats snapshots at freeze time.
    frames_dropped: u32,
    referenced_dropped: u32,
}

/// Aggregated client statistics.
#[derive(Debug, Default, Clone, Copy)]
struct ClientStats {
    bytes_downloaded: u64,
    bytes_wasted: u64,
    restarts: u32,
    kept_partials: u32,
    bytes_lost: u64,
    bytes_recovered: u64,
}

/// Phases of the session.
#[derive(Debug, PartialEq, Eq)]
enum Phase {
    Init,
    FetchingManifest,
    Streaming,
    Done,
}

/// The client application.
pub struct ClientApp {
    config: PlayerConfig,
    manifest: Arc<Manifest>,
    video: Arc<Video>,
    qoe: QoeModel,
    abr: Box<dyn Abr>,
    estimator: ThroughputEstimator,
    phase: Phase,
    fetches: BTreeMap<StreamId, FetchKind>,
    dl: Option<Download>,
    records: Vec<SegmentRecord>,
    next_segment: usize,
    // Playback state.
    play_started: bool,
    play_end: SimTime,
    startup_at: Option<SimTime>,
    total_stall: SimDuration,
    last_level: Option<QualityLevel>,
    last_idle_credit: Option<SimTime>,
    last_progress_check: SimTime,
    active_retx: Vec<StreamId>,
    stats: ClientStats,
    /// The ABR uses BETA's frame ordering.
    is_beta: bool,
    tracer: Tracer,
}

impl ClientApp {
    /// Create a client for one trial.
    pub fn new(
        config: PlayerConfig,
        manifest: Arc<Manifest>,
        video: Arc<Video>,
        qoe: QoeModel,
        abr: Box<dyn Abr>,
    ) -> ClientApp {
        let is_beta = abr.name() == "BETA";
        ClientApp {
            config,
            manifest,
            video,
            qoe,
            abr,
            estimator: ThroughputEstimator::new(),
            phase: Phase::Init,
            fetches: BTreeMap::new(),
            dl: None,
            records: Vec::new(),
            next_segment: 0,
            play_started: false,
            play_end: SimTime::ZERO,
            startup_at: None,
            total_stall: SimDuration::ZERO,
            last_level: None,
            last_idle_credit: None,
            last_progress_check: SimTime::ZERO,
            active_retx: Vec::new(),
            stats: ClientStats::default(),
            is_beta,
            tracer: Tracer::disabled(),
        }
    }

    /// Install a tracer (shared with the rest of the session).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The player configuration this client runs with.
    pub fn config(&self) -> &PlayerConfig {
        &self.config
    }

    /// Debug snapshot: (next segment index, download in flight, records).
    pub fn debug_state(&self) -> (usize, bool, usize) {
        (self.next_segment, self.dl.is_some(), self.records.len())
    }

    /// Verbose debug line for the in-flight download.
    pub fn debug_download(&self) -> String {
        match &self.dl {
            None => "no-dl".into(),
            Some(dl) => {
                let rec = self
                    .records
                    .iter()
                    .find(|r| r.seg == dl.seg)
                    .map(|r| r.received.covered_len())
                    .unwrap_or(0);
                format!(
                    "seg={} level={} head_done={} body_fin={} rec={} goal={} head_stream={} body_stream={}",
                    dl.seg, dl.level, dl.head_done, dl.body_fin_seen, rec, dl.body_goal,
                    dl.head_stream, dl.body_stream
                )
            }
        }
    }

    /// Whether the session has finished.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Buffer level in seconds at `now`.
    pub fn buffer_s(&self, now: SimTime) -> f64 {
        if !self.play_started {
            // Before playback starts, queued content is all buffer.
            return self.records.len() as f64 * SEGMENT_DURATION_S;
        }
        self.play_end.saturating_since(now).as_secs_f64()
    }

    /// Structural audit of the player state (DESIGN.md §10). The `paranoid`
    /// runtime layer calls this from the session event loop after every
    /// client pump; it must hold at every event-loop boundary.
    pub fn check_invariants(&self, now: SimTime) -> Result<(), String> {
        // The buffer can momentarily exceed capacity by the segment that
        // completed just before the idle check, never by more.
        let cap = self.config.capacity_s() + SEGMENT_DURATION_S + 1e-6;
        let buffer = self.buffer_s(now);
        if !(0.0..=cap).contains(&buffer) {
            return Err(format!("buffer level {buffer:.3}s outside [0, {cap:.3}]s"));
        }
        let elapsed = now.saturating_since(SimTime::ZERO);
        if self.total_stall > elapsed {
            return Err(format!(
                "total stall {:?} exceeds elapsed session time {:?}",
                self.total_stall, elapsed
            ));
        }
        let n = self.manifest.num_segments();
        if self.records.len() > n {
            return Err(format!(
                "{} records for a {n}-segment video",
                self.records.len()
            ));
        }
        if self.next_segment > n {
            return Err(format!(
                "next_segment {} beyond video end {n}",
                self.next_segment
            ));
        }
        for r in &self.records {
            if r.seg >= n || r.level.index() >= voxel_media::ladder::NUM_LEVELS {
                return Err(format!(
                    "record for segment {} at level index {} out of range",
                    r.seg,
                    r.level.index()
                ));
            }
        }
        if self.play_started && self.startup_at.is_none() {
            return Err("playback started without a startup timestamp".into());
        }
        self.abr.check_invariants()
    }

    /// Main pump: process connection events and advance the state machine.
    /// Called by the session loop after every network event and timer tick.
    pub fn on_wake(&mut self, now: SimTime, conn: &mut Connection) {
        self.drain_events(now, conn);
        match self.phase {
            Phase::Init => {
                let sid = conn.open_stream(Reliability::Reliable);
                self.fetches.insert(sid, FetchKind::Manifest);
                let req = Request::get("/manifest");
                voxel_http::trace::trace_request(&self.tracer, now, sid.0, &req);
                conn.send(sid, &req.encode());
                conn.finish(sid);
                self.phase = Phase::FetchingManifest;
            }
            Phase::FetchingManifest => {
                // Completion handled in drain_events.
            }
            Phase::Streaming => {
                self.check_download_progress(now, conn);
                self.maybe_complete_download(now, conn);
                self.freeze_due_segments(now);
                self.maybe_start_download(now, conn);
                // Selective retransmission runs alongside downloads: the
                // retx stream has a higher id than the in-flight body
                // stream, so lowest-id-first scheduling serves it only in
                // the gaps the primary download leaves — the §4.2
                // opportunistic behaviour at packet granularity.
                self.maybe_selective_retx(now, conn);
                self.maybe_done(now);
            }
            Phase::Done => {}
        }
    }

    /// The player wants a wake-up at this time (progress checks / playback
    /// deadlines), independent of network activity.
    pub fn next_wake(&self, now: SimTime) -> Option<SimTime> {
        if self.is_done() {
            return None;
        }
        Some(now + SimDuration::from_millis(100))
    }

    // ------------------------------------------------------------------
    // Event ingestion
    // ------------------------------------------------------------------

    fn drain_events(&mut self, now: SimTime, conn: &mut Connection) {
        while let Some(ev) = conn.poll_event() {
            match ev {
                Event::StreamOpened(..) | Event::StreamReset(_) | Event::Closed { .. } => {}
                Event::UnreliableLoss { .. } => {
                    // Client sends nothing unreliably; loss info about
                    // incoming data is derived from receive-side gaps.
                }
                Event::StreamReadable(id) | Event::StreamFinished(id) => {
                    self.on_stream_activity(now, conn, id);
                }
            }
        }
    }

    fn on_stream_activity(&mut self, now: SimTime, conn: &mut Connection, id: StreamId) {
        let Some(kind) = self.fetches.get(&id).cloned() else {
            // Canceled fetch: drop data on the floor.
            if let Some(rs) = conn.recv_stream(id) {
                let _ = rs.take_received();
                while rs.read().is_some() {}
            }
            return;
        };
        match kind {
            FetchKind::Manifest => {
                let complete = conn
                    .recv_stream(id)
                    .map(|rs| {
                        let done = rs.is_complete();
                        if done {
                            // count + drain
                        }
                        done
                    })
                    .unwrap_or(false);
                if complete {
                    let bytes = conn.recv_stream(id).map_or(0, |rs| rs.bytes_received());
                    self.stats.bytes_downloaded += bytes;
                    self.estimator.on_sample(bytes, now.as_secs_f64().max(1e-3));
                    self.fetches.remove(&id);
                    self.phase = Phase::Streaming;
                }
            }
            FetchKind::Head { seg } => {
                let complete = conn
                    .recv_stream(id)
                    .map(|rs| rs.is_complete())
                    .unwrap_or(false);
                if complete {
                    if let Some(dl) = self.dl.as_mut() {
                        if dl.seg == seg && dl.head_stream == id {
                            dl.head_done = true;
                        }
                    }
                    let bytes = conn.recv_stream(id).map_or(0, |rs| rs.bytes_received());
                    self.stats.bytes_downloaded += bytes;
                    self.fetches.remove(&id);
                }
            }
            FetchKind::Body { seg } => {
                if let Some(rs) = conn.recv_stream(id) {
                    // Harvest newly arrived chunks into the record.
                    let chunks = rs.take_received();
                    // Unreliable replies: fin marks the end of everything
                    // the network will ever deliver (FIFO path). Reliable
                    // replies: retransmissions may still be in flight after
                    // fin, so completion requires every byte.
                    let fin = match rs.reliability {
                        voxel_quic::Reliability::Unreliable => rs.final_len().is_some(),
                        voxel_quic::Reliability::Reliable => rs.is_complete(),
                    };
                    let mut gained = 0u64;
                    if let Some(rec) = self.records.iter_mut().find(|r| r.seg == seg) {
                        for (off, data) in &chunks {
                            rec.received.insert(*off, off + data.len() as u64);
                        }
                        gained = chunks.iter().map(|(_, d)| d.len() as u64).sum();
                    } else if let Some(dl) = self.dl.as_ref() {
                        if dl.seg == seg {
                            // Record exists from download start; this branch
                            // is unreachable, kept defensive.
                        }
                    }
                    self.stats.bytes_downloaded += gained;
                    if fin {
                        if let Some(dl) = self.dl.as_mut() {
                            if dl.seg == seg && dl.body_stream == id {
                                dl.body_fin_seen = true;
                            }
                        }
                    }
                }
            }
            FetchKind::Retx { seg, ref ranges } => {
                if let Some(rs) = conn.recv_stream(id) {
                    let chunks = rs.take_received();
                    let fin = rs.final_len().is_some();
                    if let Some(rec) = self.records.iter_mut().find(|r| r.seg == seg) {
                        for (resp_off, data) in &chunks {
                            for (body_s, body_e) in
                                map_response_to_body(ranges, *resp_off, data.len() as u64)
                            {
                                let before = rec.received.covered_within(body_s, body_e);
                                rec.received.insert(body_s, body_e);
                                let after = rec.received.covered_within(body_s, body_e);
                                self.stats.bytes_recovered += after - before;
                                self.stats.bytes_downloaded += after - before;
                            }
                        }
                    }
                    if fin {
                        self.fetches.remove(&id);
                        self.active_retx.retain(|&s| s != id);
                        trace_event!(
                            self.tracer,
                            now,
                            Layer::Player,
                            "retx_close",
                            "seg" = seg,
                            "stream" = id.0,
                        );
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Download lifecycle
    // ------------------------------------------------------------------

    fn maybe_start_download(&mut self, now: SimTime, conn: &mut Connection) {
        if self.dl.is_some() || self.next_segment >= self.manifest.num_segments() {
            return;
        }
        // Live mode: the encoder hasn't produced this segment yet.
        if self.config.live {
            let available_at =
                SimTime::from_secs_f64((self.next_segment + 1) as f64 * SEGMENT_DURATION_S);
            if now < available_at {
                // Waiting at the live edge is idle time for the ABR too.
                if let Some(since) = self.last_idle_credit {
                    self.abr.on_idle(now.saturating_since(since).as_secs_f64());
                }
                self.last_idle_credit = Some(now);
                self.maybe_selective_retx(now, conn);
                return;
            }
        }
        // Gate: "a new segment download can start only if the buffer is not
        // full" — room for the one in-flight segment.
        let buffer = self.buffer_s(now);
        if buffer >= self.config.capacity_s() - 1e-9 {
            // Idle: credit the placeholder, maybe run selective retx.
            if let Some(since) = self.last_idle_credit {
                self.abr.on_idle(now.saturating_since(since).as_secs_f64());
            }
            self.last_idle_credit = Some(now);
            self.maybe_selective_retx(now, conn);
            return;
        }
        self.last_idle_credit = None;

        let decision = {
            let ctx = make_ctx(
                &self.manifest,
                buffer,
                self.config.capacity_s(),
                &self.estimator,
                self.last_level,
                self.next_segment,
                self.play_started && buffer <= 0.0,
            );
            let d = self.abr.choose(&ctx);
            voxel_abr::trace::trace_decision(&self.tracer, now, &ctx, &d);
            d
        };
        self.begin_fetch(now, conn, decision, 0);
    }

    fn begin_fetch(
        &mut self,
        now: SimTime,
        conn: &mut Connection,
        decision: Decision,
        restarts: u32,
    ) {
        let seg = self.next_segment;
        let entry = self.manifest.entry(seg, decision.level);
        // lint: allow(panic) prep builds every SSIM map with the full-segment point
        let full_point = *entry.ssims.last().expect("non-empty");
        let target = decision.target.unwrap_or(full_point);

        // Body bytes to request: the target's payload minus the I-frame
        // (which travels in the head).
        let i_frame_bytes = self.video.segments[seg].frame_bytes(decision.level, 0);
        let body_full = entry.total_bytes() - entry.reliable_size;
        let body_goal = target.bytes.saturating_sub(i_frame_bytes).min(body_full);

        // Head request (always reliable).
        let head = conn.open_stream(Reliability::Reliable);
        self.fetches.insert(head, FetchKind::Head { seg });
        let head_req = Request::get(format!("/seg/{}/{}/head", seg, decision.level.index()));
        voxel_http::trace::trace_request(&self.tracer, now, head.0, &head_req);
        conn.send(head, &head_req.encode());
        conn.finish(head);

        // Body request.
        let body = conn.open_stream(Reliability::Reliable);
        self.fetches.insert(body, FetchKind::Body { seg });
        let mut req = Request::get(format!("/seg/{}/{}/body", seg, decision.level.index()));
        if body_goal > 0 {
            req = req.with_range(0, body_goal - 1);
        } else {
            req = req.with_range(0, 0); // degenerate but valid
        }
        if self.config.transport == TransportMode::Split {
            req = req.with_unreliable();
        }
        voxel_http::trace::trace_request(&self.tracer, now, body.0, &req);
        conn.send(body, &req.encode());
        conn.finish(body);

        // Ensure a record exists for incoming body data.
        if let Some(pos) = self.records.iter().position(|r| r.seg == seg) {
            // Restart: reset the record for the new level/target.
            let rec = &mut self.records[pos];
            rec.level = decision.level;
            rec.target = target;
            rec.body_goal = body_goal;
            rec.received = RangeSet::new();
        } else {
            self.records.push(SegmentRecord {
                seg,
                level: decision.level,
                target,
                body_goal,
                received: RangeSet::new(),
                beta_order: self.is_beta,
                play_start: SimTime::MAX,
                scores: None,
                frames_dropped: 0,
                referenced_dropped: 0,
            });
        }

        self.dl = Some(Download {
            seg,
            level: decision.level,
            body_goal,
            head_stream: head,
            body_stream: body,
            head_done: false,
            body_fin_seen: false,
            started: now,
            restarts_here: restarts,
        });
    }

    fn check_download_progress(&mut self, now: SimTime, conn: &mut Connection) {
        // Rate-limit to the 100 ms tick.
        if now.saturating_since(self.last_progress_check) < SimDuration::from_millis(100) {
            return;
        }
        self.last_progress_check = now;
        let Some(dl) = self.dl.as_ref() else { return };
        let rec_received = self
            .records
            .iter()
            .find(|r| r.seg == dl.seg)
            .map(|r| r.received.covered_len())
            .unwrap_or(0);
        // Progress covers the whole fetch (head + body): the reliable head
        // is served first (I-frame priority), so body-only accounting would
        // read as a stall during the head phase of every download.
        let head_received = conn
            .recv_stream(dl.head_stream)
            .map(|rs| rs.bytes_received())
            .unwrap_or(0);
        let reliable = self.manifest.entry(dl.seg, dl.level).reliable_size;
        let total_received = head_received.min(reliable) + rec_received;
        let elapsed = now.saturating_since(dl.started).as_secs_f64();
        let rate = if elapsed > 1e-3 {
            total_received as f64 * 8.0 / elapsed
        } else {
            0.0
        };
        let progress = DownloadProgress {
            bytes_received: total_received,
            bytes_target: (reliable + dl.body_goal).max(1),
            elapsed_s: elapsed,
            buffer_s: self.buffer_s(now),
            download_rate_bps: rate,
        };
        let action = {
            let buffer = self.buffer_s(now);
            let ctx = make_ctx(
                &self.manifest,
                buffer,
                self.config.capacity_s(),
                &self.estimator,
                self.last_level,
                dl.seg,
                self.play_started && buffer <= 0.0,
            );
            self.abr.on_progress(&ctx, &progress)
        };
        match action {
            AbandonAction::Continue => {}
            AbandonAction::RestartAt(level) => {
                // lint: allow(panic) on_progress only fires with an active download
                let dl = self.dl.take().expect("checked");
                // Discard and refetch: the classic, wasteful abandonment.
                self.stats.bytes_wasted += rec_received;
                self.stats.restarts += 1;
                voxel_http::trace::trace_abandon(
                    &self.tracer,
                    now,
                    dl.seg as u64,
                    "restart",
                    rec_received,
                    dl.body_goal,
                );
                self.cancel_streams(conn, &dl);
                let restarts = dl.restarts_here + 1;
                // Cap restarts per segment to avoid livelock on hostile
                // traces; after that, continue at the lowest quality.
                let level = if restarts > 2 {
                    QualityLevel::MIN
                } else {
                    level
                };
                self.begin_fetch(now, conn, voxel_abr::Decision::full(level), restarts);
            }
            AbandonAction::KeepPartial => {
                // lint: allow(panic) on_progress only fires with an active download
                let dl = self.dl.take().expect("checked");
                self.stats.kept_partials += 1;
                voxel_http::trace::trace_abandon(
                    &self.tracer,
                    now,
                    dl.seg as u64,
                    "keep_partial",
                    rec_received,
                    dl.body_goal,
                );
                self.cancel_streams(conn, &dl);
                self.finish_segment(now, dl);
            }
        }
    }

    fn cancel_streams(&mut self, conn: &mut Connection, dl: &Download) {
        for sid in [dl.head_stream, dl.body_stream] {
            self.fetches.remove(&sid);
            conn.reset_stream(sid);
        }
    }

    fn maybe_complete_download(&mut self, now: SimTime, conn: &mut Connection) {
        let complete = {
            let Some(dl) = self.dl.as_mut() else { return };
            let rec_received = self
                .records
                .iter()
                .find(|r| r.seg == dl.seg)
                .map(|r| r.received.covered_len())
                .unwrap_or(0);
            // Belt and braces: consult the stream state directly too, in
            // case the fin-carrying event raced a cancel/cleanup.
            if !dl.body_fin_seen {
                if let Some(rs) = conn.recv_stream(dl.body_stream) {
                    let fin = match rs.reliability {
                        Reliability::Unreliable => rs.final_len().is_some(),
                        Reliability::Reliable => rs.is_complete(),
                    };
                    dl.body_fin_seen = fin;
                }
            }
            dl.head_done && (dl.body_fin_seen || rec_received >= dl.body_goal)
        };
        if complete {
            // lint: allow(panic) completeness was just computed from this download
            let dl = self.dl.take().expect("checked");
            self.finish_segment(now, dl);
        }
    }

    fn finish_segment(&mut self, now: SimTime, dl: Download) {
        // Throughput sample over the whole fetch (head + body).
        let entry = self.manifest.entry(dl.seg, dl.level);
        let rec_received = self
            .records
            .iter()
            .find(|r| r.seg == dl.seg)
            .map(|r| r.received.covered_len())
            .unwrap_or(0);
        let sampled = entry.reliable_size + rec_received;
        self.estimator
            .on_sample(sampled, now.saturating_since(dl.started).as_secs_f64());
        if self.tracer.enabled() {
            let dur_ms = now.saturating_since(dl.started).as_micros() / 1000;
            self.tracer.observe("player.download_ms", dur_ms);
            self.tracer.observe("player.segment_bytes", sampled);
            trace_event!(
                self.tracer,
                now,
                Layer::Player,
                "download_done",
                "seg" = dl.seg,
                "level" = dl.level.index(),
                "bytes" = sampled,
                "dur_ms" = dur_ms,
                "restarts" = u64::from(dl.restarts_here),
            );
        }

        // In-transit loss accounting: holes *below the receive high-water
        // mark* were sent and lost (selective retx may recover them); bytes
        // past the high-water mark were deliberately skipped, not lost.
        if self.config.transport == TransportMode::Split {
            if let Some(rec) = self.records.iter().find(|r| r.seg == dl.seg) {
                let hwm = rec.received.max_end().min(dl.body_goal);
                let holes: u64 = rec.received.gaps(hwm).iter().map(|(a, b)| b - a).sum();
                self.stats.bytes_lost += holes;
            }
        }

        // Playback queueing and stall accounting.
        let rec = self
            .records
            .iter_mut()
            .find(|r| r.seg == dl.seg)
            // lint: allow(panic) a SegmentRecord is pushed when its fetch begins
            .expect("record exists");
        let seg_dur = SimDuration::from_secs_f64(SEGMENT_DURATION_S);
        if !self.play_started {
            rec.play_start = now; // provisional; fixed at startup below
            let ready = self
                .records
                .iter()
                .filter(|r| r.play_start != SimTime::MAX)
                .count();
            if ready >= self.config.startup_segments {
                // Playback starts now; queue everything ready, in order.
                self.play_started = true;
                self.startup_at = Some(now);
                self.play_end = now;
                self.tracer
                    .observe("player.startup_ms", now.as_micros() / 1000);
                trace_event!(
                    self.tracer,
                    now,
                    Layer::Player,
                    "startup",
                    "seg" = dl.seg,
                    "ready" = ready,
                );
                let mut starts: Vec<usize> = self
                    .records
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.play_start != SimTime::MAX)
                    .map(|(i, _)| i)
                    .collect();
                starts.sort_by_key(|&i| self.records[i].seg);
                for i in starts {
                    self.records[i].play_start = self.play_end;
                    self.play_end += seg_dur;
                }
            }
        } else if now > self.play_end {
            // Stall: the buffer ran dry before this segment arrived.
            let stall = now.saturating_since(self.play_end);
            if self.tracer.enabled() {
                self.tracer.count("player.stalls", 1);
                self.tracer
                    .observe("player.stall_ms", stall.as_micros() / 1000);
                // Start/end emitted back to back at detection time; the
                // start is back-dated to when playback actually ran dry.
                trace_event!(
                    self.tracer,
                    self.play_end,
                    Layer::Player,
                    "stall_start",
                    "seg" = dl.seg,
                );
                trace_event!(
                    self.tracer,
                    now,
                    Layer::Player,
                    "stall_end",
                    "seg" = dl.seg,
                    "dur_ms" = stall.as_micros() / 1000,
                );
            }
            self.total_stall += now - self.play_end;
            if self.config.debug_stall_skew {
                // Deliberate accounting drift (canary): the timeline above
                // keeps the true duration, so the drift oracle must fire.
                self.total_stall += SimDuration::from_millis(100);
            }
            self.abr.on_rebuffer();
            rec.play_start = now;
            self.play_end = now + seg_dur;
        } else {
            rec.play_start = self.play_end;
            self.play_end += seg_dur;
        }

        self.last_level = Some(dl.level);
        self.next_segment += 1;
    }

    // ------------------------------------------------------------------
    // Selective retransmission (§4.2)
    // ------------------------------------------------------------------

    fn maybe_selective_retx(&mut self, now: SimTime, conn: &mut Connection) {
        if !self.config.selective_retx
            || self.config.transport != TransportMode::Split
            || self.active_retx.len() >= 2
        {
            return;
        }
        // "We stop any selective retransmissions immediately if conditions
        // become unfavorable (e.g., buffer occupancy drops)."
        if self.buffer_s(now) < 0.25 * self.config.capacity_s() {
            return;
        }
        // Segments already being repaired by an in-flight re-request.
        let busy: Vec<usize> = self
            .active_retx
            .iter()
            .filter_map(|sid| match self.fetches.get(sid) {
                Some(FetchKind::Retx { seg, .. }) => Some(*seg),
                _ => None,
            })
            .collect();
        // Earliest unplayed, unfrozen segment with in-transit holes (below
        // its receive high-water mark; the skipped tail was a deliberate
        // quality decision, not a loss).
        let in_flight = self.dl.as_ref().map(|d| d.seg);
        let candidate = self
            .records
            .iter()
            .filter(|r| {
                r.scores.is_none()
                    && r.play_start > now
                    && !busy.contains(&r.seg)
                    // Never repair the segment still being downloaded: a
                    // restart would re-point its record at another level
                    // while the repair keeps writing old-level offsets.
                    && Some(r.seg) != in_flight
            })
            .filter_map(|r| {
                let hwm = r.received.max_end().min(r.body_goal);
                let holes = r.received.gaps(hwm);
                (!holes.is_empty()).then_some((r, holes))
            })
            .min_by_key(|(r, _)| r.seg);
        let Some((rec, holes)) = candidate else {
            return;
        };
        let seg = rec.seg;
        let level = rec.level;
        // Inclusive HTTP ranges, capped at 64 per request. (At most one
        // in-flight re-request per segment, so holes are never duplicated.)
        let ranges: Vec<(u64, u64)> = holes.iter().take(64).map(|&(s, e)| (s, e - 1)).collect();
        let sid = conn.open_stream(Reliability::Reliable);
        self.fetches.insert(
            sid,
            FetchKind::Retx {
                seg,
                ranges: ranges.clone(),
            },
        );
        let mut req = Request::get(format!("/seg/{}/{}/body", seg, level.index()));
        for (s, e) in &ranges {
            req = req.with_range(*s, *e);
        }
        req = req.with_unreliable();
        voxel_http::trace::trace_request(&self.tracer, now, sid.0, &req);
        if self.tracer.enabled() {
            self.tracer.count("player.retx_windows", 1);
            trace_event!(
                self.tracer,
                now,
                Layer::Player,
                "retx_open",
                "seg" = seg,
                "stream" = sid.0,
                "nranges" = ranges.len(),
                "bytes" = req.range_bytes(),
            );
        }
        conn.send(sid, &req.encode());
        conn.finish(sid);
        self.active_retx.push(sid);
    }

    // ------------------------------------------------------------------
    // QoE freezing
    // ------------------------------------------------------------------

    fn freeze_due_segments(&mut self, now: SimTime) {
        let qoe = self.qoe.clone();
        let video = self.video.clone();
        let manifest = self.manifest.clone();
        for rec in self
            .records
            .iter_mut()
            .filter(|r| r.scores.is_none() && r.play_start <= now)
        {
            let seg = &video.segments[rec.seg];
            let entry = manifest.entry(rec.seg, rec.level);
            let order: &[usize] = if rec.beta_order {
                &entry.beta_order
            } else {
                &entry.download_order
            };
            let mut loss = LossMap::none();
            let mut off = 0u64;
            let mut dropped = 0u32;
            let mut ref_dropped = 0u32;
            for &f in &order[1..] {
                let sz = seg.frame_bytes(rec.level, f);
                if sz == 0 {
                    continue;
                }
                let covered = rec.received.covered_within(off, off + sz);
                let frac_lost = 1.0 - covered as f64 / sz as f64;
                loss.set(f, frac_lost);
                if frac_lost > 0.999 {
                    dropped += 1;
                    if !seg.gop.dependents[f].is_empty() {
                        ref_dropped += 1;
                    }
                }
                off += sz;
            }
            rec.frames_dropped = dropped;
            rec.referenced_dropped = ref_dropped;
            rec.scores = Some(qoe.eval(seg, rec.level, &loss));
            if self.tracer.enabled() && rec.play_start != SimTime::MAX {
                self.tracer.count("player.segments_played", 1);
                self.tracer
                    .count("player.frames_dropped", u64::from(dropped));
                trace_event!(
                    self.tracer,
                    rec.play_start,
                    Layer::Player,
                    "segment_play",
                    "seg" = rec.seg,
                    "level" = rec.level.index(),
                    "ssim" = rec.scores.as_ref().map_or(f64::NAN, |s| s.ssim),
                    "dropped" = u64::from(dropped),
                    "ref_dropped" = u64::from(ref_dropped),
                );
            }
        }
    }

    fn maybe_done(&mut self, now: SimTime) {
        if self.next_segment >= self.manifest.num_segments()
            && self.dl.is_none()
            && self.play_started
            && now >= self.play_end
            && self.records.iter().all(|r| r.scores.is_some())
        {
            self.phase = Phase::Done;
        }
    }

    /// Build the trial result (consumes the client). `now` is the sim end.
    pub fn into_result(mut self, now: SimTime) -> TrialResult {
        // Force-freeze anything pending (e.g. when the session hit the
        // simulation cap).
        self.freeze_due_segments(SimTime::MAX);
        let mut segment_kbps = Vec::new();
        let mut scores = Vec::new();
        let mut bytes_skipped = 0u64;
        let mut bytes_full = 0u64;
        let mut frames_dropped = 0u32;
        let mut ref_dropped = 0u32;
        let mut segs_with_drops = 0u32;
        self.records.sort_by_key(|r| r.seg);
        for rec in &self.records {
            let entry = self.manifest.entry(rec.seg, rec.level);
            let delivered = entry.reliable_size + rec.received.covered_len();
            segment_kbps.push(delivered as f64 * 8.0 / SEGMENT_DURATION_S / 1e3);
            // lint: allow(panic) finish() freezes every record before aggregation
            scores.push(rec.scores.expect("frozen"));
            bytes_full += entry.total_bytes();
            bytes_skipped += entry.total_bytes().saturating_sub(delivered);
            frames_dropped += rec.frames_dropped;
            ref_dropped += rec.referenced_dropped;
            if rec.frames_dropped > 0 {
                segs_with_drops += 1;
            }
        }
        let duration_s = self.manifest.num_segments() as f64 * SEGMENT_DURATION_S;
        let _ = now;
        TrialResult {
            video: self.manifest.video_id.short_name(),
            abr: self.abr.name().to_string(),
            stall_s: self.total_stall.as_secs_f64(),
            duration_s,
            startup_s: self.startup_at.map(|t| t.as_secs_f64()).unwrap_or(0.0),
            segment_kbps,
            segment_scores: scores,
            bytes_downloaded: self.stats.bytes_downloaded,
            bytes_wasted: self.stats.bytes_wasted,
            bytes_skipped,
            bytes_full,
            restarts: self.stats.restarts,
            kept_partials: self.stats.kept_partials,
            bytes_lost: self.stats.bytes_lost,
            bytes_recovered: self.stats.bytes_recovered,
            segments_with_drops: segs_with_drops,
            frames_dropped,
            referenced_frames_dropped: ref_dropped,
            transport: crate::metrics::TransportStats::default(),
            metrics: None,
            completed: self.phase == Phase::Done,
        }
    }
}

/// Build an [`AbrContext`] from disjoint borrows of the client's fields
/// (the ABR itself is borrowed mutably at the call sites).
fn make_ctx<'a>(
    manifest: &'a Manifest,
    buffer_s: f64,
    capacity_s: f64,
    estimator: &ThroughputEstimator,
    last_level: Option<QualityLevel>,
    seg: usize,
    rebuffering: bool,
) -> AbrContext<'a> {
    AbrContext {
        segment_index: seg.min(manifest.num_segments() - 1),
        buffer_s,
        buffer_capacity_s: capacity_s,
        throughput_bps: estimator.estimate_bps(),
        conservative_throughput_bps: estimator.conservative_bps(),
        last_level,
        manifest,
        rebuffering,
    }
}

/// Map a received chunk of a multi-range response back to body offsets.
///
/// The response body is the concatenation of the requested (inclusive)
/// ranges; a received `[resp_off, resp_off+len)` window may span several.
fn map_response_to_body(ranges: &[(u64, u64)], resp_off: u64, len: u64) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut cursor = 0u64; // response offset at the start of each range
    let resp_end = resp_off + len;
    for &(s, e) in ranges {
        let rlen = e - s + 1;
        let rstart = cursor;
        let rend = cursor + rlen;
        let lo = resp_off.max(rstart);
        let hi = resp_end.min(rend);
        if lo < hi {
            out.push((s + (lo - rstart), s + (hi - rstart)));
        }
        cursor = rend;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_mapping_identity_for_single_prefix_range() {
        let m = map_response_to_body(&[(0, 999)], 100, 200);
        assert_eq!(m, vec![(100, 300)]);
    }

    #[test]
    fn response_mapping_spans_multiple_ranges() {
        // Ranges 100-199 and 500-599 → response offsets 0-99 and 100-199.
        let ranges = [(100, 199), (500, 599)];
        let m = map_response_to_body(&ranges, 50, 100);
        assert_eq!(m, vec![(150, 200), (500, 550)]);
        // Fully inside the second range.
        let m2 = map_response_to_body(&ranges, 120, 30);
        assert_eq!(m2, vec![(520, 550)]);
    }

    #[test]
    fn response_mapping_clamps_to_requested() {
        let ranges = [(0, 9)];
        let m = map_response_to_body(&ranges, 0, 10);
        assert_eq!(m, vec![(0, 10)]);
        assert!(map_response_to_body(&ranges, 10, 5).is_empty());
    }

    #[test]
    fn player_config_capacity() {
        let c = PlayerConfig::new(7, TransportMode::Split);
        assert_eq!(c.capacity_s(), 28.0);
        assert!(c.selective_retx);
        let r = PlayerConfig::new(1, TransportMode::Reliable);
        assert!(!r.selective_retx);
    }
}

#[cfg(test)]
mod live_tests {
    use super::*;

    #[test]
    fn live_config_builder() {
        let c = PlayerConfig::new(1, TransportMode::Split).live();
        assert!(c.live);
        assert!(!PlayerConfig::new(1, TransportMode::Split).live);
    }
}
