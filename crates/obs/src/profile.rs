//! The sampling hot-path profiler.
//!
//! # Model
//!
//! A [`Profiler`] is a cheap cloneable handle (disabled = `None`, exactly
//! like `voxel_trace::Tracer`). [`Profiler::install`] binds it to the
//! *current thread*: from then on, event loops call [`arm`] once per
//! iteration, and every 1-in-`sample` iterations the thread is **armed** —
//! span guards created by `voxel_obs::span!` take real wall-clock and
//! allocation readings and feed a per-thread span tree. On the other
//! `sample - 1` iterations a span is a single thread-local flag check, so
//! the instrumentation stays within the <5% overhead budget that ci.sh
//! enforces.
//!
//! Scaling by `sample` at report time recovers absolute numbers: the
//! scaled span totals reconcile with the run's measured wall time (±10%
//! is the acceptance bar; `dbg_profile` samples every iteration by
//! default, where they reconcile much tighter).
//!
//! # Determinism
//!
//! Wall-clock readings are quarantined here: they flow into the profile
//! report and **never** into simulation state, timers, or trace events.
//! Golden timelines are byte-identical with the profiler armed (there is
//! a test for exactly that). The `Instant::now` calls below carry
//! `voxel-lint` wall-clock waivers for the same reason.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use voxel_trace::Histogram;

/// Default sampling factor: profile 1 in 32 event-loop iterations.
pub const DEFAULT_SAMPLE: u64 = 32;

/// One node of the span tree: a `(name, idx)` pair under a parent.
#[derive(Debug, Clone)]
struct Node {
    name: &'static str,
    idx: u32,
    calls: u64,
    wall_ns: u128,
    allocs: u64,
    children: Vec<usize>,
}

/// The accumulating span tree plus profiler-owned histograms.
#[derive(Debug, Clone, Default)]
struct ProfileData {
    nodes: Vec<Node>,
    roots: Vec<usize>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl ProfileData {
    /// Find-or-create a child of `parent` (`None` = a root span).
    fn child(&mut self, parent: Option<usize>, name: &'static str, idx: u32) -> usize {
        let list = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        if let Some(&c) = list
            .iter()
            .find(|&&c| self.nodes[c].name == name && self.nodes[c].idx == idx)
        {
            return c;
        }
        let id = self.nodes.len();
        self.nodes.push(Node {
            name,
            idx,
            calls: 0,
            wall_ns: 0,
            allocs: 0,
            children: Vec::new(),
        });
        match parent {
            Some(p) => self.nodes[p].children.push(id),
            None => self.roots.push(id),
        }
        id
    }

    /// Merge `other` into `self` (tree-shape union, values summed).
    fn merge(&mut self, other: &ProfileData) {
        fn merge_list(
            dst: &mut ProfileData,
            dst_parent: Option<usize>,
            src: &ProfileData,
            src_list: &[usize],
        ) {
            for &s in src_list {
                let n = &src.nodes[s];
                let d = dst.child(dst_parent, n.name, n.idx);
                dst.nodes[d].calls += n.calls;
                dst.nodes[d].wall_ns += n.wall_ns;
                dst.nodes[d].allocs += n.allocs;
                let children = src.nodes[s].children.clone();
                merge_list(dst, Some(d), src, &children);
            }
        }
        merge_list(self, None, other, &other.roots);
        for (name, h) in &other.histograms {
            let dst = self.histograms.entry(name).or_default();
            *dst = merge_histograms(dst, h);
        }
    }
}

/// Histograms have no public merge; re-observing representative values
/// would distort them, so keep whichever side has more samples. Installs
/// are per-thread and sequential in practice, so this almost never fires
/// with both sides non-empty.
fn merge_histograms(a: &Histogram, b: &Histogram) -> Histogram {
    if a.count() >= b.count() {
        a.clone()
    } else {
        b.clone()
    }
}

/// Accumulated state across installs.
#[derive(Debug, Default)]
struct Accum {
    data: ProfileData,
    /// Wall time spent inside root spans on armed iterations (unscaled).
    busy_ns: u128,
    /// Wall time between install and uninstall.
    elapsed_ns: u128,
    installs: u64,
}

#[derive(Debug)]
struct Inner {
    sample: u64,
    acc: Mutex<Accum>,
}

/// A cheap, cloneable profiler handle. Disabled (the [`Default`]) carries
/// no allocation; all hot-path checks reduce to thread-local flag reads.
#[derive(Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Profiler(disabled)"),
            Some(i) => write!(f, "Profiler(1/{})", i.sample),
        }
    }
}

impl Profiler {
    /// A profiler that never arms anything.
    pub fn disabled() -> Profiler {
        Profiler::default()
    }

    /// An enabled profiler sampling 1 in [`DEFAULT_SAMPLE`] iterations.
    pub fn enabled() -> Profiler {
        Profiler::with_sample(DEFAULT_SAMPLE)
    }

    /// An enabled profiler sampling 1 in `sample` iterations (`1` =
    /// profile everything; heavier, but the report needs no scaling).
    pub fn with_sample(sample: u64) -> Profiler {
        Profiler {
            inner: Some(Arc::new(Inner {
                sample: sample.max(1),
                acc: Mutex::new(Accum::default()),
            })),
        }
    }

    /// Whether this handle collects anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The sampling factor (0 when disabled).
    pub fn sample(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.sample)
    }

    /// Bind this profiler to the current thread until the guard drops.
    ///
    /// Installing a disabled profiler is a no-op guard. Installs nest: the
    /// previous binding (if any) is restored on drop. The guard is `!Send`
    /// — it must drop on the thread that created it.
    pub fn install(&self) -> InstallGuard {
        let Some(inner) = &self.inner else {
            return InstallGuard {
                prev: None,
                active: false,
                _not_send: PhantomData,
            };
        };
        let prev = ACTIVE.replace(Some(Active {
            inner: inner.clone(),
            data: ProfileData::default(),
            stack: Vec::new(),
            // lint: allow(wall-clock) quarantined: profile reports only, never sim state
            started: Instant::now(),
            busy_ns: 0,
        }));
        SAMPLE.set(inner.sample);
        ARMED.set(false);
        InstallGuard {
            prev,
            active: true,
            _not_send: PhantomData,
        }
    }

    /// Snapshot everything accumulated so far into a report (`None` when
    /// disabled or when nothing was ever installed).
    pub fn report(&self) -> Option<ProfileReport> {
        let inner = self.inner.as_ref()?;
        let acc = inner
            .acc
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if acc.installs == 0 {
            return None;
        }
        Some(ProfileReport::build(inner.sample, &acc))
    }
}

/// Live per-thread profiling state.
struct Active {
    inner: Arc<Inner>,
    data: ProfileData,
    stack: Vec<Open>,
    started: Instant,
    busy_ns: u128,
}

/// One span currently on the stack.
struct Open {
    node: usize,
    start: Instant,
    alloc0: u64,
}

thread_local! {
    static ACTIVE: RefCell<Option<Active>> = const { RefCell::new(None) };
    /// Sampling factor of the installed profiler; 0 = none installed.
    static SAMPLE: Cell<u64> = const { Cell::new(0) };
    /// Whether the current iteration is being profiled.
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

/// Uninstaller returned by [`Profiler::install`]; merges the thread's
/// data back into the profiler on drop.
pub struct InstallGuard {
    prev: Option<Active>,
    active: bool,
    _not_send: PhantomData<*const ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let prev = self.prev.take();
        let (sample, armed) = match &prev {
            Some(p) => (p.inner.sample, false),
            None => (0, false),
        };
        let finished = ACTIVE.replace(prev);
        SAMPLE.set(sample);
        ARMED.set(armed);
        let Some(active) = finished else { return };
        let mut acc = active
            .inner
            .acc
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        acc.data.merge(&active.data);
        acc.busy_ns += active.busy_ns;
        acc.elapsed_ns += active.started.elapsed().as_nanos();
        acc.installs += 1;
    }
}

/// Called once per event-loop iteration: decide whether this iteration is
/// profiled. When no profiler is installed this is one thread-local read
/// and a branch.
#[inline]
pub fn arm(iter: u64) {
    let s = SAMPLE.get();
    if s != 0 {
        ARMED.set(iter.is_multiple_of(s));
    }
}

/// Whether the current iteration is being profiled on this thread.
#[inline]
pub fn armed() -> bool {
    ARMED.get()
}

/// Record `v` into a profiler-owned histogram (e.g. `obs.queue_depth`)
/// when armed; free otherwise. Samples reflect armed iterations only,
/// which is an unbiased 1-in-`sample` systematic sample of the loop.
#[inline]
pub fn observe(name: &'static str, v: u64) {
    if !ARMED.get() {
        return;
    }
    ACTIVE.with_borrow_mut(|a| {
        if let Some(a) = a.as_mut() {
            a.data.histograms.entry(name).or_default().observe(v);
        }
    });
}

/// An RAII span: times and alloc-counts a region when the thread is
/// armed. Create via [`crate::span!`]; hold the returned `Option` in a
/// binding (`let _g = ...`) so it drops at scope end.
#[must_use = "a span guard measures until it drops; bind it with `let _g = ...`"]
pub struct SpanGuard {
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Open a span named `name` with a per-instance discriminator `idx`
    /// (e.g. the fleet flow number). Returns `None` when not armed.
    #[inline]
    pub fn enter(name: &'static str, idx: u32) -> Option<SpanGuard> {
        if !ARMED.get() {
            return None;
        }
        ACTIVE.with_borrow_mut(|a| {
            let a = a.as_mut()?;
            let parent = a.stack.last().map(|o| o.node);
            let node = a.data.child(parent, name, idx);
            a.stack.push(Open {
                node,
                // lint: allow(wall-clock) quarantined: profile reports only, never sim state
                start: Instant::now(),
                alloc0: voxel_sim::alloc::current(),
            });
            Some(SpanGuard {
                _not_send: PhantomData,
            })
        })
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        ACTIVE.with_borrow_mut(|a| {
            let Some(a) = a.as_mut() else { return };
            let Some(open) = a.stack.pop() else { return };
            let ns = open.start.elapsed().as_nanos();
            let allocs = voxel_sim::alloc::current().wrapping_sub(open.alloc0);
            let node = &mut a.data.nodes[open.node];
            node.calls += 1;
            node.wall_ns += ns;
            node.allocs += allocs;
            if a.stack.is_empty() {
                a.busy_ns += ns;
            }
        });
    }
}

/// Render the live thread-local profile, if any — used by flight-recorder
/// postmortems to capture "profiler state so far" at the moment of a
/// failure, before the install guard has merged anything.
pub fn current_profile_text() -> Option<String> {
    ACTIVE.with_borrow(|a| {
        let a = a.as_ref()?;
        let acc = Accum {
            data: a.data.clone(),
            busy_ns: a.busy_ns,
            elapsed_ns: a.started.elapsed().as_nanos(),
            installs: 1,
        };
        Some(ProfileReport::build(a.inner.sample, &acc).render())
    })
}

// ---------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------

/// One span in the rendered tree, values scaled back to absolute numbers
/// (multiplied by the sampling factor).
#[derive(Debug, Clone)]
pub struct ReportNode {
    /// Span name (`layer.operation` by convention).
    pub name: &'static str,
    /// Per-instance discriminator (0 when unused).
    pub idx: u32,
    /// Estimated call count.
    pub calls: u64,
    /// Estimated inclusive wall time.
    pub wall_ns: u128,
    /// Inclusive wall time minus the children's — time in this span's own
    /// code.
    pub self_ns: u128,
    /// Estimated tracked allocations (inclusive).
    pub allocs: u64,
    /// Tracked allocations minus the children's.
    pub self_allocs: u64,
    /// Child spans, heaviest first.
    pub children: Vec<ReportNode>,
}

/// One row of the flat (per-name) view.
#[derive(Debug, Clone)]
pub struct FlatRow {
    /// Span name, aggregated over every tree position and `idx`.
    pub name: &'static str,
    /// Estimated call count.
    pub calls: u64,
    /// Estimated inclusive wall time.
    pub wall_ns: u128,
    /// Estimated self wall time.
    pub self_ns: u128,
    /// Estimated self allocations.
    pub allocs: u64,
}

/// A finished profile: the span tree plus derived views.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Sampling factor the values were scaled by.
    pub sample: u64,
    /// Wall time covered by installs (unscaled — real elapsed time).
    pub elapsed_ns: u128,
    /// Number of install/uninstall cycles merged in.
    pub installs: u64,
    /// Root spans, heaviest first, values scaled.
    pub roots: Vec<ReportNode>,
    /// Profiler-owned histograms (`obs.queue_depth`, ...), summarized.
    pub histograms: Vec<(String, voxel_trace::HistogramSummary)>,
    busy_ns_raw: u128,
}

impl ProfileReport {
    fn build(sample: u64, acc: &Accum) -> ProfileReport {
        fn convert(data: &ProfileData, list: &[usize], sample: u64) -> Vec<ReportNode> {
            let mut out: Vec<ReportNode> = list
                .iter()
                .map(|&i| {
                    let n = &data.nodes[i];
                    let children = convert(data, &n.children, sample);
                    let child_ns: u128 = children.iter().map(|c| c.wall_ns).sum();
                    let child_allocs: u64 = children.iter().map(|c| c.allocs).sum();
                    let wall_ns = n.wall_ns * sample as u128;
                    let allocs = n.allocs * sample;
                    ReportNode {
                        name: n.name,
                        idx: n.idx,
                        calls: n.calls * sample,
                        wall_ns,
                        self_ns: wall_ns.saturating_sub(child_ns),
                        allocs,
                        self_allocs: allocs.saturating_sub(child_allocs),
                        children,
                    }
                })
                .collect();
            out.sort_by(|a, b| b.wall_ns.cmp(&a.wall_ns).then(a.name.cmp(b.name)));
            out
        }
        let roots = convert(&acc.data, &acc.data.roots, sample);
        let histograms = acc
            .data
            .histograms
            .iter()
            .map(|(&name, h)| {
                (
                    name.to_string(),
                    voxel_trace::HistogramSummary {
                        count: h.count(),
                        mean: h.mean(),
                        min: h.min(),
                        max: h.max(),
                        p50: h.percentile(0.5),
                        p90: h.percentile(0.9),
                        p99: h.percentile(0.99),
                    },
                )
            })
            .collect();
        ProfileReport {
            sample,
            elapsed_ns: acc.elapsed_ns,
            installs: acc.installs,
            roots,
            histograms,
            busy_ns_raw: acc.busy_ns,
        }
    }

    /// Scaled total time inside root spans — the number to reconcile
    /// against the run's measured wall time.
    pub fn total_ns(&self) -> u128 {
        self.roots.iter().map(|r| r.wall_ns).sum()
    }

    /// Scaled total tracked allocations inside root spans.
    pub fn total_allocs(&self) -> u64 {
        self.roots.iter().map(|r| r.allocs).sum()
    }

    /// Event-loop utilization: fraction of the installed wall time spent
    /// inside root spans (scaled estimate, clamped to `[0, 1]`).
    pub fn utilization(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        let busy = self.busy_ns_raw as f64 * self.sample as f64;
        (busy / self.elapsed_ns as f64).clamp(0.0, 1.0)
    }

    /// Flat view: spans aggregated by name across tree positions and
    /// instance indices, by self time, heaviest first.
    pub fn flat(&self) -> Vec<FlatRow> {
        let mut map: BTreeMap<&'static str, FlatRow> = BTreeMap::new();
        fn walk(nodes: &[ReportNode], map: &mut BTreeMap<&'static str, FlatRow>) {
            for n in nodes {
                let row = map.entry(n.name).or_insert(FlatRow {
                    name: n.name,
                    calls: 0,
                    wall_ns: 0,
                    self_ns: 0,
                    allocs: 0,
                });
                row.calls += n.calls;
                row.wall_ns += n.wall_ns;
                row.self_ns += n.self_ns;
                row.allocs += n.self_allocs;
                walk(&n.children, map);
            }
        }
        walk(&self.roots, &mut map);
        let mut rows: Vec<FlatRow> = map.into_values().collect();
        rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(b.name)));
        rows
    }

    /// Per-layer rollup of *self* time and allocations (layer = the span
    /// name's prefix before the first `.`). Self-time attribution means
    /// the rows sum to [`ProfileReport::total_ns`] exactly.
    pub fn layers(&self) -> Vec<(String, u128, u64)> {
        let mut map: BTreeMap<String, (u128, u64)> = BTreeMap::new();
        fn walk(nodes: &[ReportNode], map: &mut BTreeMap<String, (u128, u64)>) {
            for n in nodes {
                let layer = n.name.split('.').next().unwrap_or(n.name).to_string();
                let e = map.entry(layer).or_insert((0, 0));
                e.0 += n.self_ns;
                e.1 += n.self_allocs;
                walk(&n.children, map);
            }
        }
        walk(&self.roots, &mut map);
        let mut rows: Vec<(String, u128, u64)> =
            map.into_iter().map(|(k, (t, a))| (k, t, a)).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows
    }

    /// Render the whole report as human-readable text: header, per-layer
    /// table, flat top spans, top-down tree, histograms.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        let total = self.total_ns();
        out.push_str(&format!(
            "profile: {:.1} ms wall over {} install(s), sampling 1/{}\n",
            self.elapsed_ns as f64 / 1e6,
            self.installs,
            self.sample,
        ));
        out.push_str(&format!(
            "spans:   {:.1} ms ({:.1}% of wall), {} tracked allocs, loop utilization {:.1}%\n",
            total as f64 / 1e6,
            if self.elapsed_ns > 0 {
                100.0 * total as f64 / self.elapsed_ns as f64
            } else {
                0.0
            },
            self.total_allocs(),
            100.0 * self.utilization(),
        ));

        out.push_str("\nper-layer (self time):\n");
        out.push_str(&format!(
            "  {:<10} {:>12} {:>7} {:>12}\n",
            "layer", "time ms", "%", "allocs"
        ));
        for (layer, ns, allocs) in self.layers() {
            out.push_str(&format!(
                "  {:<10} {:>12.3} {:>6.1}% {:>12}\n",
                layer,
                ns as f64 / 1e6,
                if total > 0 {
                    100.0 * ns as f64 / total as f64
                } else {
                    0.0
                },
                allocs,
            ));
        }

        out.push_str("\nflat (by self time, top 20):\n");
        out.push_str(&format!(
            "  {:<28} {:>12} {:>10} {:>10} {:>12}\n",
            "span", "calls", "self ms", "incl ms", "allocs"
        ));
        for row in self.flat().into_iter().take(20) {
            out.push_str(&format!(
                "  {:<28} {:>12} {:>10.3} {:>10.3} {:>12}\n",
                row.name,
                row.calls,
                row.self_ns as f64 / 1e6,
                row.wall_ns as f64 / 1e6,
                row.allocs,
            ));
        }

        out.push_str("\ntree (top-down, inclusive):\n");
        fn tree(nodes: &[ReportNode], depth: usize, total: u128, out: &mut String) {
            for n in nodes {
                let label = if n.idx == 0 && nodes.iter().filter(|m| m.name == n.name).count() == 1
                {
                    n.name.to_string()
                } else {
                    format!("{}#{}", n.name, n.idx)
                };
                out.push_str(&format!(
                    "  {:indent$}{:<width$} {:>10.3} ms {:>5.1}%  calls={} allocs={}\n",
                    "",
                    label,
                    n.wall_ns as f64 / 1e6,
                    if total > 0 {
                        100.0 * n.wall_ns as f64 / total as f64
                    } else {
                        0.0
                    },
                    n.calls,
                    n.allocs,
                    indent = depth * 2,
                    width = 30usize.saturating_sub(depth * 2),
                ));
                tree(&n.children, depth + 1, total, out);
            }
        }
        tree(&self.roots, 0, total, &mut out);

        if !self.histograms.is_empty() {
            out.push_str("\ngauges (sampled):\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {:<24} n={} mean={:.1} p50={:.0} p90={:.0} p99={:.0} max={}\n",
                    name, h.count, h.mean, h.p50, h.p90, h.p99, h.max,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(us: u64) {
        let start = Instant::now();
        while start.elapsed().as_micros() < us as u128 {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn disabled_profiler_is_inert() {
        let p = Profiler::disabled();
        assert!(!p.is_enabled());
        assert_eq!(p.sample(), 0);
        let _g = p.install();
        arm(0);
        assert!(!armed());
        assert!(SpanGuard::enter("x.y", 0).is_none());
        observe("obs.queue_depth", 1);
        assert!(p.report().is_none());
    }

    #[test]
    fn spans_accumulate_into_a_tree() {
        let p = Profiler::with_sample(1);
        {
            let _g = p.install();
            for i in 0..10u64 {
                arm(i);
                let _root = SpanGuard::enter("fleet.step", 0);
                {
                    let _child = SpanGuard::enter("quic.on_datagram", 0);
                    voxel_sim::alloc::note(3);
                    spin(50);
                }
                observe("obs.queue_depth", i);
            }
        }
        let r = p.report().expect("profile collected");
        assert_eq!(r.installs, 1);
        assert_eq!(r.roots.len(), 1);
        let root = &r.roots[0];
        assert_eq!(root.name, "fleet.step");
        assert_eq!(root.calls, 10);
        assert_eq!(root.children.len(), 1);
        let child = &root.children[0];
        assert_eq!(child.name, "quic.on_datagram");
        assert_eq!(child.calls, 10);
        assert_eq!(child.allocs, 30);
        assert!(child.wall_ns >= 10 * 50_000, "child {} ns", child.wall_ns);
        assert!(root.wall_ns >= child.wall_ns);
        // Self-time discipline: root self + child inclusive == root inclusive.
        assert_eq!(root.self_ns + child.wall_ns, root.wall_ns);
        assert_eq!(r.total_ns(), root.wall_ns);
        let (name, h) = &r.histograms[0];
        assert_eq!(name, "obs.queue_depth");
        assert_eq!(h.count, 10);
        assert!(r.utilization() > 0.0);
    }

    #[test]
    fn sampling_arms_one_in_n_and_scales_the_report() {
        let p = Profiler::with_sample(4);
        {
            let _g = p.install();
            let mut armed_iters = 0;
            for i in 0..16u64 {
                arm(i);
                if armed() {
                    armed_iters += 1;
                }
                let _s = SpanGuard::enter("session.step", 0);
            }
            assert_eq!(armed_iters, 4);
        }
        let r = p.report().expect("profile collected");
        assert_eq!(r.roots[0].calls, 16, "4 sampled calls scaled by 4");
    }

    #[test]
    fn installs_nest_and_merge() {
        let outer = Profiler::with_sample(1);
        let inner = Profiler::with_sample(1);
        let _go = outer.install();
        arm(0);
        {
            let _s = SpanGuard::enter("a.outer", 0);
        }
        {
            let _gi = inner.install();
            arm(0);
            let _s = SpanGuard::enter("b.inner", 0);
        }
        // Restored: spans land in the outer profile again.
        arm(0);
        {
            let _s = SpanGuard::enter("a.outer", 0);
        }
        drop(_go);
        let ro = outer.report().expect("outer profile");
        assert_eq!(ro.roots.len(), 1);
        assert_eq!(ro.roots[0].calls, 2);
        let ri = inner.report().expect("inner profile");
        assert_eq!(ri.roots[0].name, "b.inner");
    }

    #[test]
    fn per_instance_indices_stay_separate_but_flatten_together() {
        let p = Profiler::with_sample(1);
        {
            let _g = p.install();
            arm(0);
            for flow in 0..3u32 {
                let _s = SpanGuard::enter("fleet.session", flow);
            }
        }
        let r = p.report().expect("profile");
        assert_eq!(r.roots.len(), 3, "one node per flow idx");
        let flat = r.flat();
        assert_eq!(flat.len(), 1);
        assert_eq!(flat[0].calls, 3);
    }

    #[test]
    fn layers_partition_total_time() {
        let p = Profiler::with_sample(1);
        {
            let _g = p.install();
            arm(0);
            let _root = SpanGuard::enter("fleet.step", 0);
            {
                let _a = SpanGuard::enter("quic.poll_transmit", 0);
                spin(30);
            }
            {
                let _b = SpanGuard::enter("netem.enqueue", 0);
                spin(30);
            }
        }
        let r = p.report().expect("profile");
        let layers = r.layers();
        let sum: u128 = layers.iter().map(|l| l.1).sum();
        assert_eq!(sum, r.total_ns(), "self-time rows partition the total");
        let names: Vec<&str> = layers.iter().map(|l| l.0.as_str()).collect();
        assert!(names.contains(&"fleet"), "{names:?}");
        assert!(names.contains(&"quic"), "{names:?}");
        assert!(names.contains(&"netem"), "{names:?}");
    }

    #[test]
    fn render_mentions_every_section() {
        let p = Profiler::with_sample(1);
        {
            let _g = p.install();
            arm(0);
            let _s = SpanGuard::enter("quic.on_datagram", 0);
            observe("obs.queue_depth", 5);
        }
        let text = p.report().expect("profile").render();
        for needle in [
            "per-layer",
            "flat (by self time",
            "tree (top-down",
            "quic.on_datagram",
            "obs.queue_depth",
            "utilization",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn current_profile_text_renders_mid_install() {
        let p = Profiler::with_sample(1);
        let _g = p.install();
        arm(0);
        {
            let _s = SpanGuard::enter("player.on_wake", 0);
        }
        let text = current_profile_text().expect("live profile");
        assert!(text.contains("player.on_wake"), "{text}");
        assert!(current_profile_text().is_some());
    }

    #[test]
    fn no_profiler_means_no_live_text() {
        assert!(current_profile_text().is_none());
    }
}
