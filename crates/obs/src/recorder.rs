//! The flight recorder: a bounded ring of recent trace events, dumped on
//! failure.
//!
//! A [`FlightRecorder`] wraps any [`TraceSink`] with [`FlightRecorder::wrap`]:
//! events pass through to the inner sink unchanged *and* land in a
//! fixed-size ring (the same eviction model as `voxel_trace::MemorySink`,
//! but ring evictions here are by design and therefore do **not** count
//! toward the sink's dropped-event tally). When an oracle or a paranoid
//! audit trips, [`FlightRecorder::postmortem`] renders the last events —
//! plus the live profiler state, if one is installed — into a pasteable
//! block, turning "seed 41 failed" into something debuggable.
//!
//! [`install`] additionally binds a recorder to the current thread so
//! failure paths deep inside the fleet/session loops (the `paranoid`
//! audits) can call [`dump_current`] without any plumbing.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use voxel_trace::{TraceEvent, TraceSink};

/// Default ring capacity: the "last-200-events postmortem".
pub const DEFAULT_CAPACITY: usize = 200;

/// A shared, bounded ring of the most recent trace events.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: Arc<Mutex<Ring>>,
    label: String,
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    /// Events that rotated out of the ring (reported in the postmortem
    /// header so a truncated view is never mistaken for the whole run).
    evicted: u64,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events, labelled for the
    /// postmortem header (e.g. `"spec=... seed=41"`).
    pub fn new(label: impl Into<String>, capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: Arc::new(Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity.max(1)),
                capacity: capacity.max(1),
                evicted: 0,
            })),
            label: label.into(),
        }
    }

    /// Tee `inner`: recorded events go to the ring *and* through to
    /// `inner`. The returned sink forwards `flush` and the dropped-event
    /// tally to `inner` (ring evictions are intentional, not drops).
    pub fn wrap(&self, inner: Box<dyn TraceSink>) -> RecorderSink {
        RecorderSink {
            inner,
            ring: self.ring.clone(),
        }
    }

    /// Copy out the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().events.iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events that rotated out of the ring.
    pub fn evicted(&self) -> u64 {
        self.lock().evicted
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        self.ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Render the pasteable failure dump: header with `reason`, the
    /// retained events as human-readable lines, and — when a profiler is
    /// installed on the calling thread — its state so far.
    pub fn postmortem(&self, reason: &str) -> String {
        let ring = self.lock();
        let mut out = String::with_capacity(4096);
        out.push_str("==== voxel-obs flight recorder ====\n");
        out.push_str(&format!("reason: {reason}\n"));
        if !self.label.is_empty() {
            out.push_str(&format!("run:    {}\n", self.label));
        }
        out.push_str(&format!(
            "events: last {} (capacity {}, {} older rotated out)\n",
            ring.events.len(),
            ring.capacity,
            ring.evicted,
        ));
        for e in &ring.events {
            out.push_str("  ");
            out.push_str(&e.to_human());
            out.push('\n');
        }
        drop(ring);
        if let Some(profile) = crate::profile::current_profile_text() {
            out.push_str("---- profiler state ----\n");
            out.push_str(&profile);
        }
        out.push_str("===================================\n");
        out
    }
}

/// The tee produced by [`FlightRecorder::wrap`].
pub struct RecorderSink {
    inner: Box<dyn TraceSink>,
    ring: Arc<Mutex<Ring>>,
}

impl TraceSink for RecorderSink {
    fn record(&mut self, event: &TraceEvent) {
        self.inner.record(event);
        let mut ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
            ring.evicted += 1;
        }
        ring.events.push_back(event.clone());
    }

    fn flush(&mut self) {
        self.inner.flush();
    }

    fn dropped_events(&self) -> u64 {
        self.inner.dropped_events()
    }
}

thread_local! {
    /// Stack of recorders bound to this thread (nested installs).
    static CURRENT: RefCell<Vec<FlightRecorder>> = const { RefCell::new(Vec::new()) };
}

/// Bind `recorder` to the current thread until the guard drops, making it
/// reachable from [`dump_current`] in failure paths with no plumbing
/// (paranoid audits, deep oracle checks).
pub fn install(recorder: &FlightRecorder) -> RecorderGuard {
    CURRENT.with_borrow_mut(|stack| stack.push(recorder.clone()));
    RecorderGuard {
        _not_send: std::marker::PhantomData,
    }
}

/// Uninstaller returned by [`install`].
pub struct RecorderGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        CURRENT.with_borrow_mut(|stack| {
            stack.pop();
        });
    }
}

/// Postmortem from the innermost recorder bound to this thread, if any.
pub fn dump_current(reason: &str) -> Option<String> {
    CURRENT.with_borrow(|stack| stack.last().map(|r| r.postmortem(reason)))
}

/// The innermost recorder bound to this thread, if any.
///
/// A coordinator that fans work out to shard threads clones the recorder
/// it found here and [`install`]s the clone on each worker, so paranoid
/// audits deep inside a shard still reach the same ring.
pub fn current() -> Option<FlightRecorder> {
    CURRENT.with_borrow(|stack| stack.last().cloned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxel_sim::SimTime;
    use voxel_trace::{Layer, MemorySink, Value};

    fn event(seq: u64) -> TraceEvent {
        TraceEvent {
            t: SimTime::from_micros(seq * 10),
            seq,
            session_id: 7,
            layer: Layer::Player,
            kind: "tick",
            fields: vec![("i", Value::U64(seq))],
        }
    }

    #[test]
    fn tee_passes_through_and_rings() {
        let recorder = FlightRecorder::new("spec=x seed=41", 3);
        let (inner, handle) = MemorySink::shared(64);
        let mut sink = recorder.wrap(Box::new(inner));
        for i in 0..5 {
            sink.record(&event(i));
        }
        sink.flush();
        assert_eq!(handle.len(), 5, "inner sink sees everything");
        assert_eq!(recorder.len(), 3, "ring keeps the tail");
        assert_eq!(recorder.evicted(), 2);
        let seqs: Vec<u64> = recorder.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert!(!recorder.is_empty());
    }

    #[test]
    fn ring_evictions_are_not_dropped_events() {
        let recorder = FlightRecorder::new("", 1);
        let (inner, _handle) = MemorySink::shared(64);
        let mut sink = recorder.wrap(Box::new(inner));
        for i in 0..10 {
            sink.record(&event(i));
        }
        assert_eq!(
            sink.dropped_events(),
            0,
            "evictions are by design; only inner-sink drops count"
        );
    }

    #[test]
    fn postmortem_contains_header_events_and_eviction_note() {
        let recorder = FlightRecorder::new("spec=BBB seed=41", 2);
        let mut sink = recorder.wrap(Box::new(voxel_trace::NullSink));
        for i in 0..3 {
            sink.record(&event(i));
        }
        let dump = recorder.postmortem("stall accounting drift");
        assert!(dump.contains("flight recorder"), "{dump}");
        assert!(dump.contains("stall accounting drift"), "{dump}");
        assert!(dump.contains("spec=BBB seed=41"), "{dump}");
        assert!(dump.contains("1 older rotated out"), "{dump}");
        assert!(dump.contains("tick"), "{dump}");
    }

    #[test]
    fn dump_current_uses_the_innermost_install() {
        assert!(dump_current("x").is_none());
        let outer = FlightRecorder::new("outer", 4);
        let _go = install(&outer);
        {
            let inner = FlightRecorder::new("inner", 4);
            let _gi = install(&inner);
            let dump = dump_current("boom").expect("recorder installed");
            assert!(dump.contains("inner"), "{dump}");
        }
        let dump = dump_current("boom").expect("outer restored");
        assert!(dump.contains("outer"), "{dump}");
        drop(_go);
        assert!(dump_current("x").is_none());
    }

    #[test]
    fn postmortem_includes_live_profiler_state() {
        let recorder = FlightRecorder::new("", 4);
        let p = crate::profile::Profiler::with_sample(1);
        let _g = p.install();
        crate::profile::arm(0);
        {
            let _s = crate::profile::SpanGuard::enter("session.step", 0);
        }
        let dump = recorder.postmortem("invariant violated");
        assert!(dump.contains("profiler state"), "{dump}");
        assert!(dump.contains("session.step"), "{dump}");
    }
}
