#![warn(missing_docs)]
//! # voxel-obs
//!
//! Self-observability for the VOXEL simulator: where `voxel-trace` records
//! what the *protocols* did, this crate records what the *runtime* cost —
//! a sampling hot-path profiler and a crash-context flight recorder
//! (DESIGN.md §13).
//!
//! - [`Profiler`]: hierarchical spans (`obs::span!("quic.on_datagram")`)
//!   accumulating wall time, call counts, and allocation tallies (via
//!   [`voxel_sim::alloc`]) into a per-thread tree. Event loops call
//!   [`arm`] once per iteration; only 1-in-`sample` iterations take real
//!   clock readings, keeping enabled overhead under the 5% budget ci.sh
//!   enforces. Reports scale back by the sampling factor and reconcile
//!   with measured wall time.
//! - [`FlightRecorder`]: a bounded ring of recent trace events teed off
//!   any sink, rendered as a pasteable postmortem (plus live profiler
//!   state) when a testkit oracle or paranoid audit fails.
//!
//! **Determinism contract:** wall-clock readings are quarantined inside
//! profile reports and never reach simulation state — golden timelines
//! are byte-identical with the profiler armed.

pub mod profile;
pub mod recorder;

pub use profile::{
    FlatRow, InstallGuard, ProfileReport, Profiler, ReportNode, SpanGuard, DEFAULT_SAMPLE,
};
pub use recorder::{FlightRecorder, RecorderGuard, RecorderSink, DEFAULT_CAPACITY};

pub use profile::{arm, armed, observe};
pub use recorder::{current as current_recorder, dump_current, install as install_recorder};

/// Open a profiling span for the enclosing scope.
///
/// Returns `Option<SpanGuard>` — `None` (free) unless the current
/// event-loop iteration is armed. Bind it so it lives to scope end:
///
/// ```
/// use voxel_obs::Profiler;
///
/// let profiler = Profiler::with_sample(1);
/// let _install = profiler.install();
/// voxel_obs::arm(0);
/// {
///     let _span = voxel_obs::span!("quic.on_datagram");
///     // ... hot-path work ...
/// }
/// {
///     // Per-instance spans take a discriminator (e.g. the fleet flow).
///     let _span = voxel_obs::span!("fleet.session", 3);
/// }
/// drop(_install);
/// assert_eq!(profiler.report().unwrap().flat().len(), 2);
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::SpanGuard::enter($name, 0)
    };
    ($name:literal, $idx:expr) => {
        $crate::SpanGuard::enter($name, $idx as u32)
    };
}
