#![warn(missing_docs)]
//! # voxel-trace
//!
//! Cross-layer observability for the VOXEL reproduction: a structured event
//! bus plus a metrics registry, both stamped in **sim time** so telemetry
//! from the transport, HTTP, ABR, and player layers lines up on one
//! timeline — the view the paper's cross-layer argument (§4.2–4.3) is made
//! in.
//!
//! - [`TraceEvent`]: one timestamped, layer-tagged, key/value event.
//! - [`Tracer`]: a cheap cloneable handle threaded through every layer. A
//!   disabled tracer is a `None` — emitting through it is one branch, so
//!   instrumented hot paths cost nothing measurable when tracing is off.
//! - [`TraceSink`] implementations: [`NullSink`], ring-buffered
//!   [`MemorySink`], [`StderrSink`] (human-readable), and [`JsonlSink`]
//!   (one JSON object per line, replayable).
//! - [`MetricsRegistry`]: counters, gauges, and log-scale-bucket
//!   [`Histogram`]s, snapshotable at any sim time.
//!
//! Everything is deterministic: identically-seeded sessions produce
//! byte-identical JSONL streams (event order, sequence numbers, and float
//! formatting are all reproducible).

mod event;
mod metrics;
mod sink;
mod tracer;

pub use event::{Layer, TraceEvent, Value};
pub use metrics::{Histogram, HistogramSummary, MetricsRegistry, MetricsSnapshot};
pub use sink::{JsonlSink, MemoryHandle, MemorySink, NullSink, SharedBuf, StderrSink, TraceSink};
pub use tracer::Tracer;

/// Emit a structured event through a [`Tracer`], paying for field
/// construction only when tracing is enabled.
///
/// ```
/// use voxel_trace::{trace_event, Layer, Tracer};
/// use voxel_sim::SimTime;
///
/// let (tracer, handle) = Tracer::memory(1, 64);
/// trace_event!(tracer, SimTime::from_millis(5), Layer::Player, "stall_start",
///              "buffer_s" = 0.0, "segment" = 7u64);
/// assert_eq!(handle.events().len(), 1);
/// ```
#[macro_export]
macro_rules! trace_event {
    ($tracer:expr, $t:expr, $layer:expr, $kind:expr $(, $name:literal = $val:expr)* $(,)?) => {
        if $tracer.enabled() {
            $tracer.emit($t, $layer, $kind, vec![$(($name, $crate::Value::from($val))),*]);
        }
    };
}
