//! The event type, its layer tag, and deterministic JSON rendering.

use std::fmt;
use voxel_sim::SimTime;

/// Which layer of the stack emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// QUIC\* transport: packets, acks, losses, congestion control.
    Quic,
    /// HTTP semantics: requests, range requests, responses, abandonment.
    Http,
    /// ABR decisions (real or virtual levels).
    Abr,
    /// Player state: startup, stalls, segment playback, retransmission.
    Player,
    /// Session harness: trial boundaries, progress, summaries.
    Session,
    /// Fleet harness: multi-session runs on a shared link — membership,
    /// per-flow shares, fairness summaries.
    Fleet,
    /// Edge serving tier: per-edge cache outcomes and origin backhaul
    /// load (DESIGN.md §16).
    Edge,
}

impl Layer {
    /// Stable lowercase name used on the wire and in timelines.
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Quic => "quic",
            Layer::Http => "http",
            Layer::Abr => "abr",
            Layer::Player => "player",
            Layer::Session => "session",
            Layer::Fleet => "fleet",
            Layer::Edge => "edge",
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A field value. Small closed set so rendering stays deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rendered with Rust's shortest-roundtrip formatting, which is
    /// deterministic; non-finite values render as `null`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (JSON-escaped on output).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                out.push_str(&v.to_string());
            }
            Value::I64(v) => {
                out.push_str(&v.to_string());
            }
            Value::F64(v) if v.is_finite() => {
                out.push_str(&v.to_string());
            }
            Value::F64(_) => out.push_str("null"),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => write_json_string(s, out),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

/// JSON string escaping (quotes, backslash, control characters).
pub(crate) fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One structured, sim-time-stamped event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Sim time of the event.
    pub t: SimTime,
    /// Monotone per-session sequence number (total emission order, which
    /// can run ahead of `t` for events reported retroactively, e.g. a
    /// stall detected when the segment that ends it arrives).
    pub seq: u64,
    /// Session the event belongs to.
    pub session_id: u64,
    /// Emitting layer.
    pub layer: Layer,
    /// Event kind, e.g. `pkt_sent`, `decision`, `stall_start`.
    pub kind: &'static str,
    /// Event-specific key/value payload.
    pub fields: Vec<(&'static str, Value)>,
}

impl TraceEvent {
    /// One JSON object (no trailing newline), keys in fixed order:
    /// `t`, `seq`, `sid`, `layer`, `kind`, then the payload fields.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"t\":");
        out.push_str(&self.t.as_micros().to_string());
        out.push_str(",\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"sid\":");
        out.push_str(&self.session_id.to_string());
        out.push_str(",\"layer\":\"");
        out.push_str(self.layer.as_str());
        out.push_str("\",\"kind\":\"");
        out.push_str(self.kind);
        out.push('"');
        for (name, value) in &self.fields {
            out.push(',');
            write_json_string(name, &mut out);
            out.push(':');
            value.write_json(&mut out);
        }
        out.push('}');
        out
    }

    /// Human-readable single line for stderr / timeline rendering.
    pub fn to_human(&self) -> String {
        let mut out = format!(
            "[{:>13}] {:<7} {:<16}",
            format!("{}", self.t),
            self.layer.as_str(),
            self.kind
        );
        for (name, value) in &self.fields {
            out.push(' ');
            out.push_str(name);
            out.push('=');
            out.push_str(&value.to_string());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event() -> TraceEvent {
        TraceEvent {
            t: SimTime::from_millis(1500),
            seq: 3,
            session_id: 7,
            layer: Layer::Abr,
            kind: "decision",
            fields: vec![
                ("level", Value::U64(9)),
                ("buffer_s", Value::F64(4.25)),
                ("virtual", Value::Bool(true)),
                ("path", Value::Str("/seg/3/9/body".into())),
            ],
        }
    }

    #[test]
    fn json_key_order_and_values_are_stable() {
        assert_eq!(
            event().to_json(),
            "{\"t\":1500000,\"seq\":3,\"sid\":7,\"layer\":\"abr\",\"kind\":\"decision\",\
             \"level\":9,\"buffer_s\":4.25,\"virtual\":true,\"path\":\"/seg/3/9/body\"}"
        );
    }

    #[test]
    fn json_escapes_strings_and_nonfinite_floats() {
        let ev = TraceEvent {
            t: SimTime::ZERO,
            seq: 0,
            session_id: 0,
            layer: Layer::Session,
            kind: "note",
            fields: vec![
                ("msg", Value::Str("a\"b\\c\nd\u{1}".into())),
                ("bad", Value::F64(f64::NAN)),
            ],
        };
        let json = ev.to_json();
        assert!(
            json.contains("\"msg\":\"a\\\"b\\\\c\\nd\\u0001\""),
            "{json}"
        );
        assert!(json.contains("\"bad\":null"));
    }

    #[test]
    fn human_line_includes_all_fields() {
        let line = event().to_human();
        assert!(line.contains("abr"), "{line}");
        assert!(line.contains("decision"));
        assert!(line.contains("level=9"));
        assert!(line.contains("buffer_s=4.25"));
        assert!(line.contains("1.500000s"));
    }

    #[test]
    fn layer_names_are_stable() {
        let all = [
            Layer::Quic,
            Layer::Http,
            Layer::Abr,
            Layer::Player,
            Layer::Session,
            Layer::Fleet,
            Layer::Edge,
        ];
        let names: Vec<&str> = all.iter().map(|l| l.as_str()).collect();
        assert_eq!(
            names,
            ["quic", "http", "abr", "player", "session", "fleet", "edge"]
        );
    }
}
