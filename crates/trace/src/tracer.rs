//! The [`Tracer`] handle threaded through every layer.

use crate::event::{Layer, TraceEvent, Value};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::sink::{JsonlSink, MemoryHandle, MemorySink, StderrSink, TraceSink};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use voxel_sim::SimTime;

struct Inner {
    session_id: u64,
    seq: AtomicU64,
    sink: Mutex<Box<dyn TraceSink>>,
    metrics: Mutex<MetricsRegistry>,
}

/// A cheap, cloneable tracing handle.
///
/// A disabled tracer (the [`Default`]) carries no allocation at all;
/// [`Tracer::enabled`] is a single `Option` check, which is what the
/// `trace_event!` macro gates on — so instrumented hot paths stay hot when
/// tracing is off.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Tracer(disabled)"),
            Some(inner) => write!(f, "Tracer(session {})", inner.session_id),
        }
    }
}

impl Tracer {
    /// A tracer that drops everything before it is even constructed.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// A tracer for `session_id` writing events to `sink`.
    pub fn new(session_id: u64, sink: Box<dyn TraceSink>) -> Tracer {
        Tracer {
            inner: Some(Arc::new(Inner {
                session_id,
                seq: AtomicU64::new(0),
                sink: Mutex::new(sink),
                metrics: Mutex::new(MetricsRegistry::new()),
            })),
        }
    }

    /// A tracer retaining the last `capacity` events in memory, plus the
    /// handle to read them back.
    pub fn memory(session_id: u64, capacity: usize) -> (Tracer, MemoryHandle) {
        let (sink, handle) = MemorySink::shared(capacity);
        (Tracer::new(session_id, Box::new(sink)), handle)
    }

    /// A tracer printing human-readable lines to stderr.
    pub fn stderr(session_id: u64) -> Tracer {
        Tracer::new(session_id, Box::new(StderrSink))
    }

    /// A tracer writing a JSONL timeline to `path`.
    pub fn jsonl(session_id: u64, path: impl AsRef<Path>) -> std::io::Result<Tracer> {
        Ok(Tracer::new(session_id, Box::new(JsonlSink::create(path)?)))
    }

    /// Whether events are being collected.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The traced session id (0 when disabled).
    pub fn session_id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.session_id)
    }

    /// Emit one event. Prefer the [`crate::trace_event!`] macro, which
    /// skips field construction entirely when tracing is off.
    pub fn emit(
        &self,
        t: SimTime,
        layer: Layer,
        kind: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) {
        let Some(inner) = &self.inner else { return };
        let event = TraceEvent {
            t,
            seq: inner.seq.fetch_add(1, Ordering::Relaxed),
            session_id: inner.session_id,
            layer,
            kind,
            fields,
        };
        inner
            .sink
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .record(&event);
    }

    /// Add `delta` to the named counter.
    pub fn count(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner
                .metrics
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .count(name, delta);
        }
    }

    /// Set the named gauge.
    pub fn gauge(&self, name: &'static str, v: f64) {
        if let Some(inner) = &self.inner {
            inner
                .metrics
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .gauge(name, v);
        }
    }

    /// Record a histogram sample.
    pub fn observe(&self, name: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            inner
                .metrics
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .observe(name, v);
        }
    }

    /// Snapshot the metrics registry at sim time `at` (None when disabled).
    ///
    /// The snapshot also surfaces the sink's silently-lost-event tally as
    /// a `trace.dropped` counter (omitted while zero), so ring-buffer
    /// truncation in bounded sinks is visible in reports instead of
    /// quietly shortening timelines.
    pub fn metrics_snapshot(&self, at: SimTime) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|i| {
            let mut snap = i
                .metrics
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .snapshot(at);
            let dropped = i
                .sink
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .dropped_events();
            if dropped > 0 {
                snap.set_counter("trace.dropped", dropped);
            }
            snap
        })
    }

    /// Flush the sink (end of session).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner
                .sink
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_event;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        assert_eq!(t.session_id(), 0);
        t.count("x", 1);
        t.observe("y", 2);
        t.gauge("z", 3.0);
        trace_event!(t, SimTime::ZERO, Layer::Quic, "pkt_sent", "pn" = 1u64);
        assert!(t.metrics_snapshot(SimTime::ZERO).is_none());
        t.flush();
    }

    #[test]
    fn emit_assigns_monotone_sequence_numbers() {
        let (t, handle) = Tracer::memory(9, 16);
        for i in 0..4u64 {
            trace_event!(t, SimTime::from_micros(i), Layer::Session, "tick", "i" = i);
        }
        let events = handle.events();
        assert_eq!(events.len(), 4);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.session_id, 9);
        }
    }

    #[test]
    fn clones_share_one_stream_and_registry() {
        let (t, handle) = Tracer::memory(1, 16);
        let t2 = t.clone();
        t.count("n", 1);
        t2.count("n", 2);
        trace_event!(t, SimTime::ZERO, Layer::Abr, "a");
        trace_event!(t2, SimTime::ZERO, Layer::Http, "b");
        assert_eq!(handle.events().len(), 2);
        assert_eq!(handle.events()[1].seq, 1, "shared sequence counter");
        let snap = t.metrics_snapshot(SimTime::ZERO).unwrap();
        assert_eq!(snap.counter("n"), 3);
    }

    #[test]
    fn snapshot_surfaces_sink_drops_as_trace_dropped() {
        let (t, _handle) = Tracer::memory(1, 2);
        for i in 0..5u64 {
            trace_event!(t, SimTime::from_micros(i), Layer::Session, "tick", "i" = i);
        }
        let snap = t.metrics_snapshot(SimTime::ZERO).unwrap();
        assert_eq!(snap.counter("trace.dropped"), 3);
        // Sorted invariant survives the injection.
        let mut names: Vec<&String> = snap.counters.iter().map(|(n, _)| n).collect();
        let sorted = names.clone();
        names.sort();
        assert_eq!(names, sorted);

        // Lossless sinks never grow the counter.
        let (t, _handle) = Tracer::memory(1, 64);
        trace_event!(t, SimTime::ZERO, Layer::Session, "tick");
        let snap = t.metrics_snapshot(SimTime::ZERO).unwrap();
        assert!(
            !snap.counters.iter().any(|(n, _)| n == "trace.dropped"),
            "zero drops stay out of the snapshot"
        );
    }

    #[test]
    fn macro_skips_field_evaluation_when_disabled() {
        let t = Tracer::disabled();
        let mut evaluated = false;
        trace_event!(
            t,
            SimTime::ZERO,
            Layer::Player,
            "x",
            "v" = {
                evaluated = true;
                1u64
            }
        );
        assert!(!evaluated, "fields must not be built when tracing is off");
    }
}
