//! Pluggable event sinks.

use crate::event::TraceEvent;
use std::collections::VecDeque;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Destination for emitted [`TraceEvent`]s.
///
/// Sinks are owned by a [`crate::Tracer`] behind a mutex, so implementations
/// take `&mut self` and must be `Send` (trials run on worker threads).
pub trait TraceSink: Send {
    /// Record one event.
    fn record(&mut self, event: &TraceEvent);
    /// Flush any buffered output (end of session).
    fn flush(&mut self) {}
    /// Events this sink has silently lost (e.g. ring-buffer eviction).
    /// Surfaced as the `trace.dropped` counter in metrics snapshots so
    /// truncation is visible in reports. Lossless sinks report 0.
    fn dropped_events(&self) -> u64 {
        0
    }
}

/// Discards everything — tracing's off-switch with the wiring still in
/// place. Useful for measuring instrumentation overhead.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: &TraceEvent) {}
}

/// Ring-buffered in-memory sink: keeps the most recent `capacity` events.
#[derive(Debug)]
pub struct MemorySink {
    buf: Arc<Mutex<VecDeque<TraceEvent>>>,
    capacity: usize,
    dropped: Arc<std::sync::atomic::AtomicU64>,
}

/// Reader half of a [`MemorySink`]; stays valid after the sink moves into a
/// tracer.
#[derive(Debug, Clone)]
pub struct MemoryHandle {
    buf: Arc<Mutex<VecDeque<TraceEvent>>>,
    dropped: Arc<std::sync::atomic::AtomicU64>,
}

impl MemorySink {
    /// A sink retaining up to `capacity` events, plus its reader handle.
    pub fn shared(capacity: usize) -> (MemorySink, MemoryHandle) {
        assert!(capacity > 0, "MemorySink capacity must be positive");
        let buf = Arc::new(Mutex::new(VecDeque::with_capacity(capacity)));
        let dropped = Arc::new(std::sync::atomic::AtomicU64::new(0));
        (
            MemorySink {
                buf: buf.clone(),
                capacity,
                dropped: dropped.clone(),
            },
            MemoryHandle { buf, dropped },
        )
    }

    /// Events evicted by the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: &TraceEvent) {
        let mut buf = self
            .buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        buf.push_back(event.clone());
    }

    fn dropped_events(&self) -> u64 {
        self.dropped()
    }
}

impl MemoryHandle {
    /// Copy out the retained events in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Human-readable lines to stderr — the debug-run sink.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrSink;

impl TraceSink for StderrSink {
    fn record(&mut self, event: &TraceEvent) {
        eprintln!("{}", event.to_human());
    }
}

/// One JSON object per line to any writer — the machine-readable timeline.
pub struct JsonlSink {
    out: BufWriter<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Write JSONL to `path` (truncating).
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::to_writer(Box::new(file)))
    }

    /// Write JSONL to an arbitrary writer.
    pub fn to_writer(out: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            out: BufWriter::new(out),
        }
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, event: &TraceEvent) {
        // Sinks have no error channel; losing telemetry must not kill a
        // simulation, so write errors are ignored (matching eprintln!).
        let _ = self.out.write_all(event.to_json().as_bytes());
        let _ = self.out.write_all(b"\n");
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    /// Flush on drop so aborted or panicked trials keep the tail of the
    /// timeline. `BufWriter`'s own drop writes its buffer out but does
    /// *not* flush the underlying writer; a full `flush()` pushes the
    /// tail all the way through (e.g. a buffered or shared inner writer).
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// A `Write` implementation over shared memory, for capturing JSONL output
/// in tests (e.g. byte-identical determinism checks).
#[derive(Debug, Default, Clone)]
pub struct SharedBuf {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuf {
    /// New empty buffer.
    pub fn new() -> SharedBuf {
        SharedBuf::default()
    }

    /// Copy out everything written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Layer, Value};
    use voxel_sim::SimTime;

    fn event(seq: u64) -> TraceEvent {
        TraceEvent {
            t: SimTime::from_micros(seq * 10),
            seq,
            session_id: 1,
            layer: Layer::Quic,
            kind: "pkt_sent",
            fields: vec![("pn", Value::U64(seq))],
        }
    }

    #[test]
    fn memory_sink_rings_at_capacity() {
        let (mut sink, handle) = MemorySink::shared(3);
        for i in 0..5 {
            sink.record(&event(i));
        }
        assert_eq!(sink.dropped(), 2);
        let seqs: Vec<u64> = handle.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(handle.len(), 3);
        assert!(!handle.is_empty());
    }

    #[test]
    fn jsonl_sink_roundtrips_through_a_writer() {
        let buf = SharedBuf::new();
        let mut sink = JsonlSink::to_writer(Box::new(buf.clone()));
        sink.record(&event(0));
        sink.record(&event(1));
        sink.flush();
        let text = String::from_utf8(buf.contents()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], event(0).to_json());
        assert_eq!(lines[1], event(1).to_json());
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        let buf = SharedBuf::new();
        {
            let mut sink = JsonlSink::to_writer(Box::new(buf.clone()));
            sink.record(&event(3));
            // No explicit flush: dropping the sink must not lose the tail.
        }
        let text = String::from_utf8(buf.contents()).unwrap();
        assert_eq!(text, format!("{}\n", event(3).to_json()));
    }

    #[test]
    fn dropped_events_defaults_to_zero_and_memory_sink_reports_evictions() {
        let buf = SharedBuf::new();
        let jsonl = JsonlSink::to_writer(Box::new(buf));
        assert_eq!(TraceSink::dropped_events(&jsonl), 0);
        let (mut sink, _handle) = MemorySink::shared(2);
        for i in 0..5 {
            sink.record(&event(i));
        }
        assert_eq!(TraceSink::dropped_events(&sink), 3);
    }

    #[test]
    fn jsonl_sink_writes_files() {
        let path = std::env::temp_dir().join("voxel_trace_sink_test.jsonl");
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.record(&event(7));
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, format!("{}\n", event(7).to_json()));
        let _ = std::fs::remove_file(&path);
    }
}
