//! Counters, gauges, and log-scale histograms, snapshotable at any sim time.

use crate::event::write_json_string;
use std::collections::BTreeMap;
use voxel_sim::SimTime;

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i` (1..=64)
/// holds values in `[2^(i-1), 2^i)`.
const BUCKETS: usize = 65;

/// A fixed-bucket histogram with power-of-two (log-scale) buckets.
///
/// Designed for the quantities the instrumentation records — RTTs in
/// microseconds, byte counts, stall durations — whose interesting structure
/// spans orders of magnitude. Insertion is O(1); percentile queries
/// interpolate linearly inside a bucket.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index for a value.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// `[lo, hi)` bounds of bucket `i` (saturating at `u64::MAX`).
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 1)
    } else {
        let lo = 1u64 << (i - 1);
        let hi = if i >= 64 { u64::MAX } else { 1u64 << i };
        (lo, hi)
    }
}

impl Histogram {
    /// Record one value.
    pub fn observe(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Approximate `p`-quantile (`p` in `[0, 1]`), linearly interpolated
    /// inside the containing bucket and clamped to the observed `min`/`max`.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 1.0);
        // Rank in [0, count-1], same convention as voxel_sim::stats.
        let rank = p * (self.count - 1) as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let first = seen as f64;
            let last = (seen + c - 1) as f64;
            if rank <= last {
                let (lo, hi) = bucket_bounds(i);
                // Clamp the bucket span to what was actually observed so
                // single-bucket histograms report exact values.
                let lo = lo.max(self.min) as f64;
                let hi = (hi - 1).min(self.max) as f64;
                if c == 1 || hi <= lo {
                    return lo;
                }
                let frac = (rank - first) / (last - first).max(1.0);
                return lo + (hi - lo) * frac.clamp(0.0, 1.0);
            }
            seen += c;
        }
        self.max as f64
    }
}

/// A point-in-time summary of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Mean sample.
    pub mean: f64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median (interpolated).
    pub p50: f64,
    /// 90th percentile (interpolated).
    pub p90: f64,
    /// 99th percentile (interpolated).
    pub p99: f64,
}

/// Registry of named counters, gauges, and histograms.
///
/// Names are `&'static str` so the instrumented hot paths never allocate
/// for metric bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to a counter (creating it at zero).
    pub fn count(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Set a gauge to its latest value.
    pub fn gauge(&mut self, name: &'static str, v: f64) {
        self.gauges.insert(name, v);
    }

    /// Record a histogram sample.
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.histograms.entry(name).or_default().observe(v);
    }

    /// Current counter value (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current gauge value, if ever set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Freeze the registry into a snapshot stamped `at` sim time.
    pub fn snapshot(&self, at: SimTime) -> MetricsSnapshot {
        MetricsSnapshot {
            at,
            counters: self
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(&k, h)| {
                    (
                        k.to_string(),
                        HistogramSummary {
                            count: h.count(),
                            mean: h.mean(),
                            min: h.min(),
                            max: h.max(),
                            p50: h.percentile(0.5),
                            p90: h.percentile(0.9),
                            p99: h.percentile(0.99),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// All metric values at one sim time, sorted by name.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Sim time of the snapshot.
    pub at: SimTime,
    /// Counter name → value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → latest value.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → summary.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Insert or overwrite a counter, preserving the by-name sort order.
    ///
    /// Used for values that live outside the registry proper — e.g. the
    /// sink's `trace.dropped` tally, which only exists at snapshot time.
    pub fn set_counter(&mut self, name: &str, v: u64) {
        match self
            .counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
        {
            Ok(i) => self.counters[i].1 = v,
            Err(i) => self.counters.insert(i, (name.to_string(), v)),
        }
    }

    /// Counter value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Histogram summary, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// One JSON object capturing the whole snapshot.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"at\":");
        out.push_str(&self.at.as_micros().to_string());
        out.push_str(",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(name, &mut out);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(name, &mut out);
            out.push(':');
            if v.is_finite() {
                out.push_str(&v.to_string());
            } else {
                out.push_str("null");
            }
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(name, &mut out);
            out.push_str(&format!(
                ":{{\"count\":{},\"mean\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                h.count, h.mean, h.min, h.max, h.p50, h.p90, h.p99
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_covers_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi - 1), i, "last value of bucket {i}");
        }
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let mut h = Histogram::default();
        for v in [3, 0, 10, 500, 7] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 500);
        assert!((h.mean() - 104.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0.0);
    }

    #[test]
    fn single_value_histogram_reports_it_exactly() {
        let mut h = Histogram::default();
        h.observe(777);
        for p in [0.0, 0.5, 1.0] {
            assert_eq!(h.percentile(p), 777.0, "p={p}");
        }
        assert_eq!(h.mean(), 777.0);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let mut prev = -1.0;
        for i in 0..=20 {
            let p = i as f64 / 20.0;
            let q = h.percentile(p);
            assert!(q >= prev, "p{p}: {q} < {prev}");
            assert!((1.0..=1000.0).contains(&q), "p{p} = {q}");
            prev = q;
        }
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(1.0), 1000.0);
        // The median of 1..=1000 is ~500; log-bucket resolution puts it in
        // [256, 512) — accept the bucket-level approximation.
        let p50 = h.percentile(0.5);
        assert!((256.0..512.0).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn u64_max_saturates_in_the_top_bucket() {
        let mut h = Histogram::default();
        h.observe(u64::MAX);
        h.observe(u64::MAX - 1);
        h.observe(1u64 << 63);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 1u64 << 63);
        assert_eq!(h.max(), u64::MAX);
        // The top bucket's upper bound saturates at u64::MAX rather than
        // wrapping; every percentile stays inside [min, max].
        let (lo, hi) = bucket_bounds(64);
        assert_eq!(lo, 1u64 << 63);
        assert_eq!(hi, u64::MAX);
        for p in [0.0, 0.5, 0.99, 1.0] {
            let q = h.percentile(p);
            assert!(
                ((1u64 << 63) as f64..=u64::MAX as f64).contains(&q),
                "p{p} = {q} escaped [min, max]"
            );
        }
        // Mean over near-MAX samples must not overflow into nonsense.
        assert!(h.mean() >= (1u64 << 63) as f64);
        assert!(h.mean() <= u64::MAX as f64);
    }

    proptest::proptest! {
        /// For any sample set, `percentile(p)` is monotone non-decreasing
        /// in `p` and clamped to the observed `[min, max]` — including
        /// zeros, duplicate-heavy sets, and values up to `u64::MAX`.
        #[test]
        fn percentile_is_monotone_and_clamped(
            samples in proptest::collection::vec((0u64..3, 0u64..=u64::MAX), 1..64),
            ps in proptest::collection::vec(0.0f64..=1.0, 2..16),
        ) {
            let mut h = Histogram::default();
            for &(class, raw) in &samples {
                // Mix value classes: tiny counts (incl. zeros), mid-range,
                // and near-MAX values exercising top-bucket saturation.
                let v = match class {
                    0 => raw % 17,
                    1 => raw % 1_000_000,
                    _ => u64::MAX - (raw % 1000),
                };
                h.observe(v);
            }
            let mut ps = ps;
            ps.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut prev = f64::NEG_INFINITY;
            for &p in &ps {
                let q = h.percentile(p);
                proptest::prop_assert!(q >= prev, "percentile({p}) = {q} < {prev}");
                proptest::prop_assert!(
                    (h.min() as f64..=h.max() as f64).contains(&q),
                    "percentile({p}) = {q} outside [{}, {}]",
                    h.min(),
                    h.max()
                );
                prev = q;
            }
        }
    }

    #[test]
    fn counters_and_gauges_snapshot_semantics() {
        let mut reg = MetricsRegistry::new();
        reg.count("quic.packets_sent", 2);
        reg.count("quic.packets_sent", 3);
        reg.gauge("player.buffer_s", 1.5);
        reg.gauge("player.buffer_s", 9.75);
        reg.observe("quic.srtt_us", 60_000);
        let snap = reg.snapshot(SimTime::from_secs(12));
        assert_eq!(snap.at, SimTime::from_secs(12));
        assert_eq!(snap.counter("quic.packets_sent"), 5);
        assert_eq!(snap.counter("missing"), 0);
        // Gauges keep the latest value only.
        assert_eq!(snap.gauges, vec![("player.buffer_s".to_string(), 9.75)]);
        let h = snap.histogram("quic.srtt_us").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.p50, 60_000.0);
        // Snapshots are frozen: later mutation must not leak in.
        reg.count("quic.packets_sent", 100);
        assert_eq!(snap.counter("quic.packets_sent"), 5);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_sorted() {
        let mut reg = MetricsRegistry::new();
        reg.count("b.second", 1);
        reg.count("a.first", 2);
        reg.gauge("g", 0.5);
        reg.observe("h", 8);
        let json = reg.snapshot(SimTime::from_micros(42)).to_json();
        assert_eq!(json, reg.snapshot(SimTime::from_micros(42)).to_json());
        let a = json.find("a.first").unwrap();
        let b = json.find("b.second").unwrap();
        assert!(a < b, "counters sorted by name: {json}");
        assert!(json.starts_with("{\"at\":42,"));
        assert!(json.contains("\"g\":0.5"));
        assert!(json.contains("\"count\":1"));
    }
}
