//! HTTP request/response messages and their wire codec.

use bytes::Bytes;

/// The custom header marking a request for unreliable delivery (§4.2).
pub const UNRELIABLE_HEADER: &str = "x-voxel-unreliable";

/// Response status codes used by the video server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusCode {
    /// 200 OK.
    Ok,
    /// 206 Partial Content (range request satisfied).
    PartialContent,
    /// 404 Not Found.
    NotFound,
    /// 416 Range Not Satisfiable.
    RangeNotSatisfiable,
}

impl StatusCode {
    /// Numeric code.
    pub fn as_u16(self) -> u16 {
        match self {
            StatusCode::Ok => 200,
            StatusCode::PartialContent => 206,
            StatusCode::NotFound => 404,
            StatusCode::RangeNotSatisfiable => 416,
        }
    }

    /// Reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            StatusCode::Ok => "OK",
            StatusCode::PartialContent => "Partial Content",
            StatusCode::NotFound => "Not Found",
            StatusCode::RangeNotSatisfiable => "Range Not Satisfiable",
        }
    }

    /// Parse from a numeric code.
    pub fn from_u16(code: u16) -> Option<StatusCode> {
        Some(match code {
            200 => StatusCode::Ok,
            206 => StatusCode::PartialContent,
            404 => StatusCode::NotFound,
            416 => StatusCode::RangeNotSatisfiable,
            _ => return None,
        })
    }
}

/// An HTTP GET request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request path, e.g. `/bbb/seg-17-q12.m4s`.
    pub path: String,
    /// Inclusive byte ranges requested (multiple ranges = one `Range:`
    /// header with a comma-separated list, as VOXEL's selective
    /// re-requests use).
    pub ranges: Vec<(u64, u64)>,
    /// Whether the client asked for unreliable delivery.
    pub unreliable: bool,
}

impl Request {
    /// A whole-resource GET.
    pub fn get(path: impl Into<String>) -> Request {
        Request {
            path: path.into(),
            ranges: Vec::new(),
            unreliable: false,
        }
    }

    /// Add a byte range (inclusive).
    pub fn with_range(mut self, start: u64, end: u64) -> Request {
        assert!(start <= end, "range start must not exceed end");
        self.ranges.push((start, end));
        self
    }

    /// Request unreliable delivery.
    pub fn with_unreliable(mut self) -> Request {
        self.unreliable = true;
        self
    }

    /// Total bytes covered by the ranges (0 = whole resource).
    pub fn range_bytes(&self) -> u64 {
        self.ranges.iter().map(|&(s, e)| e - s + 1).sum()
    }

    /// Serialize to wire text.
    pub fn encode(&self) -> Bytes {
        let mut s = format!("GET {} HTTP/1.1\r\n", self.path);
        if !self.ranges.is_empty() {
            let list: Vec<String> = self
                .ranges
                .iter()
                .map(|(a, b)| format!("{a}-{b}"))
                .collect();
            s.push_str(&format!("Range: bytes={}\r\n", list.join(",")));
        }
        if self.unreliable {
            s.push_str(&format!("{UNRELIABLE_HEADER}: 1\r\n"));
        }
        s.push_str("\r\n");
        Bytes::from(s)
    }

    /// Parse from wire text; `None` on malformed input.
    pub fn decode(data: &[u8]) -> Option<Request> {
        let text = std::str::from_utf8(data).ok()?;
        let mut lines = text.split("\r\n");
        let request_line = lines.next()?;
        let mut parts = request_line.split(' ');
        if parts.next()? != "GET" {
            return None;
        }
        let path = parts.next()?.to_string();
        if parts.next()? != "HTTP/1.1" {
            return None;
        }
        let mut req = Request {
            path,
            ranges: Vec::new(),
            unreliable: false,
        };
        for line in lines {
            if line.is_empty() {
                break;
            }
            let (name, value) = line.split_once(':')?;
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "range" => {
                    let spec = value.strip_prefix("bytes=")?;
                    for r in spec.split(',') {
                        let (a, b) = r.trim().split_once('-')?;
                        let start = a.parse().ok()?;
                        let end = b.parse().ok()?;
                        if start > end {
                            return None;
                        }
                        req.ranges.push((start, end));
                    }
                }
                h if h == UNRELIABLE_HEADER => req.unreliable = true,
                _ => {} // unknown headers are ignored, as HTTP requires
            }
        }
        Some(req)
    }
}

/// An HTTP response header (the body travels separately on the stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Total length of the body that follows on this stream.
    pub content_length: u64,
    /// Echo of the satisfied ranges (for 206).
    pub content_ranges: Vec<(u64, u64)>,
}

impl Response {
    /// A 200 with the given body length.
    pub fn ok(content_length: u64) -> Response {
        Response {
            status: StatusCode::Ok,
            content_length,
            content_ranges: Vec::new(),
        }
    }

    /// A 206 satisfying `ranges` (content length = sum of range lengths).
    pub fn partial(ranges: Vec<(u64, u64)>) -> Response {
        let content_length = ranges.iter().map(|&(s, e)| e - s + 1).sum();
        Response {
            status: StatusCode::PartialContent,
            content_length,
            content_ranges: ranges,
        }
    }

    /// An error response with no body.
    pub fn error(status: StatusCode) -> Response {
        Response {
            status,
            content_length: 0,
            content_ranges: Vec::new(),
        }
    }

    /// Serialize to wire text.
    pub fn encode(&self) -> Bytes {
        let mut s = format!(
            "HTTP/1.1 {} {}\r\nContent-Length: {}\r\n",
            self.status.as_u16(),
            self.status.reason(),
            self.content_length
        );
        if !self.content_ranges.is_empty() {
            let list: Vec<String> = self
                .content_ranges
                .iter()
                .map(|(a, b)| format!("{a}-{b}"))
                .collect();
            s.push_str(&format!("Content-Range: bytes {}\r\n", list.join(",")));
        }
        s.push_str("\r\n");
        Bytes::from(s)
    }

    /// Parse from wire text.
    pub fn decode(data: &[u8]) -> Option<Response> {
        let text = std::str::from_utf8(data).ok()?;
        let mut lines = text.split("\r\n");
        let status_line = lines.next()?;
        let mut parts = status_line.splitn(3, ' ');
        if parts.next()? != "HTTP/1.1" {
            return None;
        }
        let status = StatusCode::from_u16(parts.next()?.parse().ok()?)?;
        let mut resp = Response {
            status,
            content_length: 0,
            content_ranges: Vec::new(),
        };
        for line in lines {
            if line.is_empty() {
                break;
            }
            let (name, value) = line.split_once(':')?;
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "content-length" => resp.content_length = value.parse().ok()?,
                "content-range" => {
                    let spec = value.strip_prefix("bytes ")?;
                    for r in spec.split(',') {
                        let (a, b) = r.trim().split_once('-')?;
                        resp.content_ranges.push((a.parse().ok()?, b.parse().ok()?));
                    }
                }
                _ => {}
            }
        }
        Some(resp)
    }

    /// The length of the encoded header block, useful for sizing streams.
    pub fn header_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_get_roundtrips() {
        let req = Request::get("/bbb/manifest.mpd");
        let decoded = Request::decode(&req.encode()).expect("decodes");
        assert_eq!(decoded, req);
        assert!(!decoded.unreliable);
        assert_eq!(decoded.range_bytes(), 0);
    }

    #[test]
    fn range_request_roundtrips() {
        let req = Request::get("/bbb/seg-3-q12.m4s")
            .with_range(0, 999)
            .with_range(5000, 5999);
        let wire = req.encode();
        let text = std::str::from_utf8(&wire).unwrap();
        assert!(text.contains("Range: bytes=0-999,5000-5999"));
        let decoded = Request::decode(&wire).unwrap();
        assert_eq!(decoded, req);
        assert_eq!(decoded.range_bytes(), 2000);
    }

    #[test]
    fn unreliable_header_roundtrips() {
        let req = Request::get("/x").with_unreliable();
        let wire = req.encode();
        assert!(std::str::from_utf8(&wire)
            .unwrap()
            .contains("x-voxel-unreliable: 1"));
        assert!(Request::decode(&wire).unwrap().unreliable);
    }

    #[test]
    fn voxel_unaware_server_sees_a_valid_plain_request() {
        // Backward compatibility: the custom header is just a header; a
        // parser that ignores unknown headers still accepts the request.
        let wire = Request::get("/x").with_unreliable().encode();
        let req = Request::decode(&wire).unwrap();
        assert_eq!(req.path, "/x");
    }

    #[test]
    fn unknown_headers_are_ignored() {
        let raw = b"GET /y HTTP/1.1\r\nUser-Agent: dash.js\r\nAccept: */*\r\n\r\n";
        let req = Request::decode(raw).unwrap();
        assert_eq!(req.path, "/y");
        assert!(req.ranges.is_empty());
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(Request::decode(b"POST /x HTTP/1.1\r\n\r\n").is_none());
        assert!(Request::decode(b"GET /x HTTP/2\r\n\r\n").is_none());
        assert!(Request::decode(b"GET /x HTTP/1.1\r\nRange: bytes=9-2\r\n\r\n").is_none());
        assert!(Request::decode(b"garbage").is_none());
        assert!(Request::decode(&[0xff, 0xfe]).is_none());
    }

    #[test]
    fn malformed_range_headers_are_rejected() {
        for raw in [
            // Empty spec, missing dash, suffix/open-ended forms (unused by
            // VOXEL's exact-range clients), junk numbers, wrong unit, and
            // a second bad range hiding behind a good one.
            b"GET /x HTTP/1.1\r\nRange: bytes=\r\n\r\n".as_slice(),
            b"GET /x HTTP/1.1\r\nRange: bytes=5\r\n\r\n",
            b"GET /x HTTP/1.1\r\nRange: bytes=-500\r\n\r\n",
            b"GET /x HTTP/1.1\r\nRange: bytes=500-\r\n\r\n",
            b"GET /x HTTP/1.1\r\nRange: bytes=a-b\r\n\r\n",
            b"GET /x HTTP/1.1\r\nRange: octets=0-5\r\n\r\n",
            b"GET /x HTTP/1.1\r\nRange: bytes=0-9,9-2\r\n\r\n",
            b"GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n",
        ] {
            assert!(
                Request::decode(raw).is_none(),
                "accepted {:?}",
                std::str::from_utf8(raw)
            );
        }
    }

    #[test]
    fn overlapping_ranges_are_accepted_and_preserved() {
        // The codec does not police overlap or ordering — a selective
        // re-request may legitimately re-cover bytes already in flight.
        // Both survive the round-trip verbatim, in request order.
        let req = Request::get("/seg/0/12/body")
            .with_range(0, 999)
            .with_range(500, 1499);
        let decoded = Request::decode(&req.encode()).unwrap();
        assert_eq!(decoded.ranges, vec![(0, 999), (500, 1499)]);
        // range_bytes sums the spans as given; overlap is the caller's
        // concern (the server serves exactly what was asked).
        assert_eq!(decoded.range_bytes(), 2000);
    }

    #[test]
    fn ok_response_roundtrips() {
        let r = Response::ok(12345);
        let d = Response::decode(&r.encode()).unwrap();
        assert_eq!(d, r);
        assert_eq!(d.status.as_u16(), 200);
    }

    #[test]
    fn partial_response_roundtrips() {
        let r = Response::partial(vec![(100, 199), (300, 399)]);
        assert_eq!(r.content_length, 200);
        let d = Response::decode(&r.encode()).unwrap();
        assert_eq!(d, r);
        assert_eq!(d.status, StatusCode::PartialContent);
    }

    #[test]
    fn zero_length_partial_response() {
        // A 206 satisfying no ranges (a fully-cancelled re-request) is
        // legal on this codec: zero body, no Content-Range header.
        let r = Response::partial(vec![]);
        assert_eq!(r.status, StatusCode::PartialContent);
        assert_eq!(r.content_length, 0);
        let wire = r.encode();
        assert!(!std::str::from_utf8(&wire)
            .unwrap()
            .contains("Content-Range"));
        let d = Response::decode(&wire).unwrap();
        assert_eq!(d, r);
        assert!(d.content_ranges.is_empty());
    }

    #[test]
    fn error_responses() {
        for status in [StatusCode::NotFound, StatusCode::RangeNotSatisfiable] {
            let r = Response::error(status);
            let d = Response::decode(&r.encode()).unwrap();
            assert_eq!(d.status, status);
            assert_eq!(d.content_length, 0);
        }
    }

    #[test]
    fn header_len_matches_encoding() {
        let r = Response::partial(vec![(0, 9)]);
        assert_eq!(r.header_len(), r.encode().len());
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn requests_roundtrip(
                path in "/[a-z0-9/._-]{1,40}",
                ranges in proptest::collection::vec((0u64..1_000_000, 0u64..1_000_000), 0..5),
                unreliable in proptest::bool::ANY,
            ) {
                let mut req = Request::get(path);
                for (a, b) in ranges {
                    let (a, b) = if a <= b { (a, b) } else { (b, a) };
                    req = req.with_range(a, b);
                }
                if unreliable {
                    req = req.with_unreliable();
                }
                prop_assert_eq!(Request::decode(&req.encode()), Some(req));
            }
        }
    }
}
