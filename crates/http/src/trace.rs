//! HTTP-layer trace instrumentation.
//!
//! The HTTP codec itself is pure data ([`Request`]/[`Response`] carry no
//! clock and no tracer), so the emission helpers live here and are called
//! by whoever drives the codec (the client when it issues a request, the
//! server when it answers one). Keeping them in this crate keeps the
//! HTTP event taxonomy next to the messages it describes:
//!
//! | kind            | emitted when                                  |
//! |-----------------|-----------------------------------------------|
//! | `request`       | a whole-resource GET is sent                  |
//! | `range_request` | a GET with `Range:` is sent (incl. retx)      |
//! | `response`      | the server resolves a request                 |
//! | `abandon`       | the client gives up on an in-flight download  |
//!
//! Metrics: counters `http.requests`, `http.range_requests`,
//! `http.responses`, `http.abandons`; histograms `http.range_bytes`,
//! `http.response_bytes`.

use crate::message::{Request, Response};
use voxel_sim::SimTime;
use voxel_trace::{trace_event, Layer, Tracer};

/// Record an outgoing request on stream `stream`.
pub fn trace_request(tracer: &Tracer, t: SimTime, stream: u64, req: &Request) {
    if !tracer.enabled() {
        return;
    }
    if req.ranges.is_empty() {
        tracer.count("http.requests", 1);
        trace_event!(
            tracer,
            t,
            Layer::Http,
            "request",
            "stream" = stream,
            "path" = req.path.as_str(),
            "unreliable" = req.unreliable,
        );
    } else {
        tracer.count("http.range_requests", 1);
        tracer.observe("http.range_bytes", req.range_bytes());
        trace_event!(
            tracer,
            t,
            Layer::Http,
            "range_request",
            "stream" = stream,
            "path" = req.path.as_str(),
            "nranges" = req.ranges.len(),
            "bytes" = req.range_bytes(),
            "unreliable" = req.unreliable,
        );
    }
}

/// Record a served response (body of `body_len` bytes) on stream `stream`.
pub fn trace_response(
    tracer: &Tracer,
    t: SimTime,
    stream: u64,
    resp: &Response,
    body_len: u64,
    unreliable: bool,
) {
    if !tracer.enabled() {
        return;
    }
    tracer.count("http.responses", 1);
    tracer.observe("http.response_bytes", body_len);
    trace_event!(
        tracer,
        t,
        Layer::Http,
        "response",
        "stream" = stream,
        "status" = u64::from(resp.status.as_u16()),
        "bytes" = body_len,
        "unreliable" = unreliable,
    );
}

/// Record the client abandoning an in-flight download (`action` is
/// `"restart"` or `"keep_partial"`).
pub fn trace_abandon(
    tracer: &Tracer,
    t: SimTime,
    seg: u64,
    action: &'static str,
    received: u64,
    target: u64,
) {
    if !tracer.enabled() {
        return;
    }
    tracer.count("http.abandons", 1);
    trace_event!(
        tracer,
        t,
        Layer::Http,
        "abandon",
        "seg" = seg,
        "action" = action,
        "received" = received,
        "target" = target,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::StatusCode;
    use voxel_trace::Tracer;

    #[test]
    fn request_kinds_split_on_ranges() {
        let (tracer, handle) = Tracer::memory(1, 16);
        trace_request(&tracer, SimTime::ZERO, 0, &Request::get("/manifest"));
        trace_request(
            &tracer,
            SimTime::from_millis(5),
            4,
            &Request::get("/seg/0/12/body")
                .with_range(0, 999)
                .with_unreliable(),
        );
        let events = handle.events();
        assert_eq!(events[0].kind, "request");
        assert_eq!(events[1].kind, "range_request");
        let snap = tracer.metrics_snapshot(SimTime::from_millis(5)).unwrap();
        assert_eq!(snap.counter("http.requests"), 1);
        assert_eq!(snap.counter("http.range_requests"), 1);
        assert_eq!(snap.histogram("http.range_bytes").unwrap().count, 1);
    }

    #[test]
    fn response_and_abandon_record_counters() {
        let (tracer, handle) = Tracer::memory(1, 16);
        let resp = Response::partial(vec![(0, 999)]);
        trace_response(&tracer, SimTime::ZERO, 4, &resp, 1000, true);
        trace_abandon(
            &tracer,
            SimTime::from_millis(9),
            3,
            "keep_partial",
            500,
            2000,
        );
        let events = handle.events();
        assert_eq!(events[0].kind, "response");
        assert_eq!(events[1].kind, "abandon");
        let snap = tracer.metrics_snapshot(SimTime::from_millis(9)).unwrap();
        assert_eq!(snap.counter("http.responses"), 1);
        assert_eq!(snap.counter("http.abandons"), 1);
        assert_eq!(StatusCode::PartialContent.as_u16(), 206);
    }

    #[test]
    fn helpers_are_inert_when_disabled() {
        let tracer = Tracer::disabled();
        trace_request(&tracer, SimTime::ZERO, 0, &Request::get("/x"));
        trace_abandon(&tracer, SimTime::ZERO, 0, "restart", 0, 0);
        assert!(tracer.metrics_snapshot(SimTime::ZERO).is_none());
    }
}
