#![warn(missing_docs)]
//! # voxel-http
//!
//! A minimal HTTP/1.1-over-streams layer — just enough of HTTP for DASH
//! streaming as the paper uses it (§4.2 "Interfacing transport and
//! application layers"):
//!
//! - `GET` requests with `Range:` headers (byte-range fetches of segments,
//!   and the selective re-requests of lost ranges),
//! - the custom **`x-voxel-unreliable`** header a VOXEL-aware client sends
//!   to ask the server to deliver the response body over an unreliable
//!   QUIC\* stream (a VOXEL-unaware server simply ignores it; a
//!   VOXEL-unaware client simply never sends it — backward compatibility in
//!   both directions),
//! - `200` / `206 Partial Content` / `404` responses.
//!
//! Requests and responses serialize to text exactly like HTTP/1.1, so the
//! codec is testable byte-for-byte.

pub mod message;
pub mod trace;

pub use message::{Request, Response, StatusCode, UNRELIABLE_HEADER};
