//! Seeded, splittable randomness.
//!
//! Every stochastic component of the reproduction (VBR size noise, trace
//! generation, cross-traffic arrivals, survey panel) draws from a
//! [`SimRng`] derived from a root seed plus a label, so adding a new
//! consumer never perturbs the draws of existing ones.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic RNG wrapper with convenience distributions.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create from a raw 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive a child RNG from a root seed and a label.
    ///
    /// Uses FNV-1a over the label mixed into the seed so that
    /// `derive(s, "trace")` and `derive(s, "vbr")` are independent streams.
    pub fn derive(root_seed: u64, label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(root_seed ^ h)
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.inner.gen_range(0..n)
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        let u1: f64 = self.uniform().max(1e-12);
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with given mean and standard deviation.
    pub fn normal_ms(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Exponential with the given rate (mean = 1/rate).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        -self.uniform().max(1e-12).ln() / rate
    }

    /// Bounded Pareto (heavy-tailed) — the classic web-object-size model
    /// Harpoon uses for cross-traffic flow sizes.
    pub fn pareto(&mut self, scale: f64, shape: f64, cap: f64) -> f64 {
        debug_assert!(scale > 0.0 && shape > 0.0 && cap >= scale);
        let u = self.uniform().max(1e-12);
        (scale / u.powf(1.0 / shape)).min(cap)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(42);
        let mut b = SimRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_labels_are_independent() {
        let mut a = SimRng::derive(42, "trace");
        let mut b = SimRng::derive(42, "vbr");
        // Not a strict independence test, but the streams must differ.
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SimRng::from_seed(7);
        for _ in 0..1000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = SimRng::from_seed(1);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = SimRng::from_seed(2);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn pareto_respects_bounds() {
        let mut r = SimRng::from_seed(3);
        for _ in 0..1000 {
            let x = r.pareto(1_000.0, 1.2, 1e7);
            assert!((1_000.0..=1e7).contains(&x));
        }
    }

    #[test]
    fn index_within_bounds() {
        let mut r = SimRng::from_seed(4);
        for _ in 0..1000 {
            assert!(r.index(7) < 7);
        }
    }
}
