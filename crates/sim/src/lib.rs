#![warn(missing_docs)]
//! # voxel-sim
//!
//! Deterministic discrete-event simulation (DES) engine underlying every
//! VOXEL experiment.
//!
//! The paper's testbed consists of bare-metal machines shaped with `tc`; we
//! reproduce it with a virtual-time simulator so that every experiment is
//! exactly repeatable from a seed. The engine is intentionally small:
//!
//! - [`SimTime`] / [`SimDuration`]: microsecond-resolution virtual time.
//! - [`EventQueue`]: a stable priority queue of timestamped events.
//! - [`rng`]: seeded, splittable random number generation so that independent
//!   subsystems (trace noise, cross-traffic, VBR sizes) never share streams.
//! - [`stats`]: percentile / mean / stderr helpers used by every figure.
//! - [`alloc`]: thread-local allocation tallies for the profiler in
//!   `voxel-obs` — telemetry-only, never read back by sim logic.
//!
//! The engine is runtime-agnostic by design — the transport in `voxel-quic`
//! is written against these primitives but structured like an async
//! packet-processing loop, so it could be lifted onto real sockets.

pub mod alloc;
pub mod clock;
pub mod event;
pub mod pool;
pub mod rng;
pub mod stats;

pub use clock::{SimDuration, SimTime};
pub use event::{EventQueue, ScheduledEvent};
pub use rng::SimRng;
