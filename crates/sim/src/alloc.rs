//! Thread-local allocation accounting for the observability layer.
//!
//! The simulator's hot paths allocate in a handful of well-known places —
//! scheduling an event, encoding a packet, enqueueing on a link. Each of
//! those sites calls [`note`] so a profiler (voxel-obs) can attribute
//! allocation churn to the span that caused it by diffing [`current`]
//! around a region of interest.
//!
//! The counter is a plain thread-local `Cell`: bumping it is one or two
//! nanoseconds, it never synchronizes, and — crucially for determinism —
//! nothing in the simulation ever reads it back. It is telemetry-only:
//! identical seeds produce identical timelines whether or not anyone is
//! watching the counter.

use std::cell::Cell; // lint: allow(shard-unshareable) telemetry-only counter; each shard keeps its own, nothing reads across threads

// lint: allow(shard-unshareable) per-thread allocation tally: shard-local by design, diffed on the owning thread only
thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Record `n` tracked allocations on this thread.
#[inline]
pub fn note(n: u64) {
    ALLOCS.set(ALLOCS.get().wrapping_add(n));
}

/// Total tracked allocations on this thread since it started (wrapping).
///
/// Only meaningful as a *difference* between two reads on the same thread.
#[inline]
pub fn current() -> u64 {
    ALLOCS.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notes_accumulate_per_thread() {
        let before = current();
        note(3);
        note(4);
        assert_eq!(current().wrapping_sub(before), 7);
    }

    #[test]
    fn threads_do_not_share_the_counter() {
        let before = current();
        std::thread::spawn(|| {
            note(1_000_000);
        })
        .join()
        .expect("helper thread");
        assert_eq!(current(), before, "another thread's notes leaked in");
    }
}
