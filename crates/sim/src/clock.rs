//! Virtual time for the discrete-event simulator.
//!
//! Time is measured in integer microseconds from the start of the
//! simulation. Integer ticks keep event ordering exact (no floating-point
//! drift across the multi-minute experiments in the paper, which simulate
//! 5-minute video sessions packet by packet).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in virtual time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any event in practice; used as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from fractional seconds (rounds to the nearest microsecond).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "SimTime cannot be negative");
        SimTime((s * 1e6).round() as u64)
    }

    /// Raw microsecond tick count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference `self - earlier` (zero if `earlier` is later).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference; `None` if `earlier` is after `self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds (rounds to the nearest microsecond).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "SimDuration cannot be negative");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Scale by a non-negative factor (used for e.g. `1.25 x BDP`).
    pub fn mul_f64(self, k: f64) -> Self {
        debug_assert!(k >= 0.0);
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> Self {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The time it takes to serialize `bytes` at `rate_bps` bits/second.
    ///
    /// This is the single conversion every link and queue in `voxel-netem`
    /// relies on, so it lives here next to the time types.
    pub fn serialization(bytes: u64, rate_bps: f64) -> Self {
        debug_assert!(rate_bps > 0.0, "rate must be positive");
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / rate_bps)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self >= rhs, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrips_units() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(3).as_micros(), 3);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(30);
        let b = SimDuration::from_millis(12);
        assert_eq!((a + b).as_micros(), 42_000);
        assert_eq!((a - b).as_micros(), 18_000);
        assert_eq!(
            a.saturating_sub(SimDuration::from_secs(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!((t - SimTime::from_secs(1)).as_micros(), 500_000);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(late.saturating_since(early).as_micros(), 1_000_000);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    fn serialization_delay_matches_rate() {
        // 1500 bytes at 12 Mbps = 1 ms.
        let d = SimDuration::serialization(1500, 12_000_000.0);
        assert_eq!(d.as_micros(), 1_000);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(100).mul_f64(1.25);
        assert_eq!(d.as_micros(), 125_000);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(format!("{}", SimDuration::from_micros(5)), "5us");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5)), "5.000s");
    }
}
