//! A stable, deterministic event queue.
//!
//! Two events scheduled for the same instant fire in the order they were
//! scheduled (FIFO tie-breaking via a monotonically increasing sequence
//! number). Determinism here is what makes whole experiments reproducible
//! bit-for-bit from a seed.

use crate::clock::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event of user-defined payload type `E`, scheduled at [`SimTime`].
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Insertion sequence number; breaks ties deterministically.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then
        // lowest-sequence) event is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue positioned at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// An empty queue with room for `capacity` pending events before the
    /// heap reallocates. Fleet shards size their per-session queues once
    /// up front so steady-state scheduling allocates nothing.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; we clamp to
    /// `now` (the event fires "immediately") and debug-assert, because the
    /// alternative — time moving backwards — corrupts every downstream
    /// timestamp.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        // Telemetry only (never read by sim logic): lets the profiler
        // attribute event-churn to the span that scheduled it.
        crate::alloc::note(1);
        self.heap.push(ScheduledEvent { at, seq, event });
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next event, advancing virtual time to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.heap.pop()?;
        self.now = ev.at;
        Some(ev)
    }

    /// Discard all pending events (e.g. at session teardown), keeping `now`.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_popped_event() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1u32);
        let e = q.pop().unwrap();
        assert_eq!(e.event, 1);
        // Schedule relative to the new now.
        q.schedule(q.now() + SimDuration::from_secs(1), 2u32);
        q.schedule(q.now() + SimDuration::from_millis(500), 3u32);
        assert_eq!(q.pop().unwrap().event, 3);
        assert_eq!(q.pop().unwrap().event, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn peek_does_not_advance_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.now(), SimTime::ZERO);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Pops come out in nondecreasing time order, and equal-time events
        /// preserve insertion order regardless of the schedule pattern.
        #[test]
        fn global_order_and_stability(times in proptest::collection::vec(0u64..1000, 1..300)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            let mut seen = 0;
            while let Some(ev) = q.pop() {
                if let Some((lt, lseq)) = last {
                    prop_assert!(ev.at >= lt);
                    if ev.at == lt {
                        prop_assert!(ev.event > lseq, "FIFO violated at {lt}");
                    }
                }
                last = Some((ev.at, ev.event));
                seen += 1;
            }
            prop_assert_eq!(seen, times.len());
        }
    }
}
