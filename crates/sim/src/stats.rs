//! Summary statistics used by every figure in the evaluation.
//!
//! The paper reports 90th-percentile values with standard errors across 30
//! trials (§5, "Experiments"), CDFs over segments, and means. These helpers
//! centralize those computations so each figure binary just formats rows.

/// Mean of a slice; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0.0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Standard error of the mean.
pub fn std_err(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    std_dev(xs) / (xs.len() as f64).sqrt()
}

/// The `p`-quantile (0 ≤ p ≤ 1) with linear interpolation between order
/// statistics (the "type 7" estimator used by gnuplot/R, matching the
/// paper's plotting pipeline).
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    if v.len() == 1 {
        return v[0];
    }
    let h = p * (v.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        v[lo] + (h - lo as f64) * (v[hi] - v[lo])
    }
}

/// An empirical CDF over the samples: returns `(value, F(value))` pairs
/// at each distinct sorted sample, suitable for plotting or table output.
pub fn ecdf(xs: &[f64]) -> Vec<(f64, f64)> {
    if xs.is_empty() {
        return Vec::new();
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len() as f64;
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (i, x) in v.iter().enumerate() {
        let f = (i + 1) as f64 / n;
        match out.last_mut() {
            Some(last) if last.0 == *x => last.1 = f,
            _ => out.push((*x, f)),
        }
    }
    out
}

/// Evaluate an empirical CDF at fixed probe points: for each `probe`,
/// the fraction of samples ≤ probe. Handy for printing fixed-grid CDF rows.
pub fn ecdf_at(xs: &[f64], probes: &[f64]) -> Vec<(f64, f64)> {
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    probes
        .iter()
        .map(|&p| {
            let count = v.partition_point(|&x| x <= p);
            (p, count as f64 / v.len().max(1) as f64)
        })
        .collect()
}

/// A running mean/min/max accumulator for streaming metrics.
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    n: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Accumulator {
            n: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.sum_sq / self.n as f64 - m * m).max(0.0).sqrt()
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert!((std_err(&xs) - 2.0 / 8f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
        // 90th percentile of 1..=10 under type-7: 9.1
        let ten: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        assert!((percentile(&ten, 0.9) - 9.1).abs() < 1e-12);
    }

    #[test]
    fn percentile_of_singleton_and_empty() {
        assert_eq!(percentile(&[3.5], 0.9), 3.5);
        assert_eq!(percentile(&[], 0.9), 0.0);
    }

    #[test]
    fn ecdf_is_monotone_and_ends_at_one() {
        let xs = [3.0, 1.0, 2.0, 2.0];
        let cdf = ecdf(&xs);
        assert_eq!(cdf.first().unwrap().0, 1.0);
        assert_eq!(cdf.last().unwrap(), &(3.0, 1.0));
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        // Duplicate value collapsed with cumulative probability.
        assert!(cdf.contains(&(2.0, 0.75)));
    }

    #[test]
    fn ecdf_at_probes() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let rows = ecdf_at(&xs, &[0.5, 2.0, 10.0]);
        assert_eq!(rows[0].1, 0.0);
        assert_eq!(rows[1].1, 0.5);
        assert_eq!(rows[2].1, 1.0);
    }

    #[test]
    fn empty_slices_are_benign() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_err(&[]), 0.0);
        assert!(ecdf(&[]).is_empty());
        // ecdf_at over no samples: every probe gets F = 0, not NaN.
        let rows = ecdf_at(&[], &[0.0, 1.0]);
        assert_eq!(rows, vec![(0.0, 0.0), (1.0, 0.0)]);
    }

    #[test]
    fn single_element_statistics() {
        let xs = [42.0];
        assert_eq!(mean(&xs), 42.0);
        assert_eq!(std_dev(&xs), 0.0);
        assert_eq!(std_err(&xs), 0.0);
        assert_eq!(percentile(&xs, 0.0), 42.0);
        assert_eq!(percentile(&xs, 0.5), 42.0);
        assert_eq!(percentile(&xs, 1.0), 42.0);
        assert_eq!(ecdf(&xs), vec![(42.0, 1.0)]);
        let mut acc = Accumulator::new();
        acc.add(42.0);
        assert_eq!(acc.std_dev(), 0.0);
        assert_eq!((acc.min(), acc.max()), (Some(42.0), Some(42.0)));
    }

    #[test]
    fn percentile_extremes_hit_order_statistics_exactly() {
        // p = 0 and p = 1 must return min/max with no interpolation error,
        // including on unsorted input and negative values.
        let xs = [5.0, -3.0, 9.5, 0.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), -3.0);
        assert_eq!(percentile(&xs, 1.0), 9.5);
    }

    #[test]
    fn empty_accumulator_reports_nothing() {
        let acc = Accumulator::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.std_dev(), 0.0);
        assert_eq!(acc.min(), None);
        assert_eq!(acc.max(), None);
    }

    #[test]
    fn accumulator_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.add(x);
        }
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - mean(&xs)).abs() < 1e-12);
        assert!((acc.std_dev() - std_dev(&xs)).abs() < 1e-9);
        assert_eq!(acc.min(), Some(2.0));
        assert_eq!(acc.max(), Some(9.0));
    }
}
