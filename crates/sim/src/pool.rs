//! Work-stealing job pool for independent trials, and buffer pools for
//! the simulator's per-step scratch allocations.
//!
//! Experiments (single-session trial sweeps and fleet sweeps alike) run
//! many independent, deterministic jobs whose results must come back in
//! index order so downstream aggregation stays bit-identical regardless
//! of scheduling. Workers pull indices from a shared atomic counter —
//! long jobs never leave a fixed chunk of stragglers behind — and each
//! result lands in its own pre-allocated slot.
//!
//! [`VecPool`] is the allocation-side counterpart: the fleet coordinator
//! and the netem link churn through short-lived `Vec` batches (merged
//! outboxes, departure lists, delivery routes) once per barrier round,
//! and without reuse that per-step allocation scales with fleet size. A
//! `VecPool` hands the same backing buffers out round after round,
//! clearing them on the way out so a reused buffer can never leak a
//! previous round's payloads. Fresh (non-reused) allocations are reported
//! through [`crate::alloc::note`], so profiler attribution and
//! [`PoolStats`] agree by construction.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers to use for `n` jobs on this machine: the available
/// parallelism, capped at the job count (and at least 1).
pub fn default_workers(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .clamp(1, n.max(1))
}

/// Run `job(0..n)` across `workers` threads, returning results in index
/// order. Jobs are claimed one at a time from a shared counter (work
/// stealing), so heterogeneous job durations still load-balance.
pub fn run_indexed<T, F>(n: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    {
        let slot_refs: Vec<Mutex<&mut Option<T>>> = slots.iter_mut().map(Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = job(i);
                    let mut slot = slot_refs[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    **slot = Some(result);
                });
            }
        });
    }
    slots
        .into_iter()
        // lint: allow(panic) scoped threads joined above; every slot was written
        .map(|s| s.expect("pool job ran"))
        .collect()
}

/// Allocation accounting of a [`VecPool`].
///
/// `fresh` counts buffers that had to be allocated (each one also calls
/// [`crate::alloc::note`]); `reused` counts acquisitions served from the
/// free list; `released` counts buffers returned. `high_water` is the
/// largest number of free buffers ever held at once — it only grows, so
/// capacity growth is monotone by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers allocated fresh (reported via [`crate::alloc::note`]).
    pub fresh: u64,
    /// Acquisitions served by reusing a released buffer.
    pub reused: u64,
    /// Buffers returned to the pool.
    pub released: u64,
    /// High-water mark of the free list, in buffers.
    pub high_water: usize,
}

/// A free list of reusable `Vec<T>` buffers.
///
/// [`VecPool::acquire`] returns an *empty* vector — reused buffers are
/// cleared on release, so stale elements from a previous user are
/// unreachable — that keeps whatever capacity it grew last time around.
/// Single-threaded by design: each shard/coordinator owns its own pool,
/// which is exactly the sharing discipline the parallel fleet enforces
/// everywhere else.
#[derive(Debug, Default)]
pub struct VecPool<T> {
    free: Vec<Vec<T>>,
    stats: PoolStats,
}

impl<T> VecPool<T> {
    /// An empty pool.
    pub fn new() -> VecPool<T> {
        VecPool {
            free: Vec::new(),
            stats: PoolStats::default(),
        }
    }

    /// Take a buffer: a released one when available (cleared, capacity
    /// retained), a fresh allocation otherwise.
    pub fn acquire(&mut self) -> Vec<T> {
        match self.free.pop() {
            Some(buf) => {
                self.stats.reused += 1;
                debug_assert!(buf.is_empty(), "released buffers are cleared");
                buf
            }
            None => {
                self.stats.fresh += 1;
                crate::alloc::note(1);
                Vec::new()
            }
        }
    }

    /// Return a buffer for reuse. Its elements are dropped here; its
    /// capacity survives for the next [`VecPool::acquire`].
    pub fn release(&mut self, mut buf: Vec<T>) {
        buf.clear();
        self.free.push(buf);
        self.stats.released += 1;
        self.stats.high_water = self.stats.high_water.max(self.free.len());
    }

    /// Free buffers currently held.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Allocation accounting so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_indexed(100, 8, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_matches_serial() {
        let serial: Vec<usize> = (0..17).map(|i| i * i).collect();
        assert_eq!(run_indexed(17, 1, |i| i * i), serial);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_indexed(64, 6, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn default_workers_is_bounded_by_jobs() {
        assert_eq!(default_workers(1), 1);
        assert!(default_workers(1024) >= 1);
    }

    #[test]
    fn vec_pool_reuses_capacity_without_contents() {
        let mut pool: VecPool<u64> = VecPool::new();
        let mut a = pool.acquire();
        a.extend(0..100);
        let cap = a.capacity();
        pool.release(a);
        let b = pool.acquire();
        assert!(b.is_empty(), "reused buffer leaked elements");
        assert_eq!(b.capacity(), cap, "reuse keeps the grown capacity");
        assert_eq!(
            pool.stats(),
            PoolStats {
                fresh: 1,
                reused: 1,
                released: 1,
                high_water: 1
            }
        );
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    /// One step of a randomized pool workload: acquire a buffer and fill
    /// it with `fill` elements, or release the oldest outstanding buffer.
    #[derive(Debug, Clone)]
    enum Op {
        Acquire { fill: usize },
        Release,
    }

    fn ops() -> impl Strategy<Value = Vec<Op>> {
        proptest::collection::vec(
            prop_oneof![
                (0usize..64).prop_map(|fill| Op::Acquire { fill }),
                Just(Op::Release),
            ],
            1..200,
        )
    }

    proptest! {
        /// Any acquire/fill/release interleaving: acquired buffers are
        /// always empty (no stale payloads), the pool's fresh-allocation
        /// count reconciles with the `alloc::note` telemetry diff, and
        /// the free-list high-water mark grows monotonically.
        #[test]
        fn pool_never_leaks_and_stats_reconcile(ops in ops()) {
            let mut pool: VecPool<u8> = VecPool::new();
            let mut outstanding: Vec<Vec<u8>> = Vec::new();
            let allocs_before = crate::alloc::current();
            let mut last_high_water = 0usize;
            for op in ops {
                match op {
                    Op::Acquire { fill } => {
                        let mut buf = pool.acquire();
                        prop_assert!(buf.is_empty(), "stale payload survived reuse");
                        buf.resize(fill, 0xAB);
                        outstanding.push(buf);
                    }
                    Op::Release => {
                        if let Some(buf) = outstanding.pop() {
                            pool.release(buf);
                        }
                    }
                }
                let s = pool.stats();
                prop_assert!(s.high_water >= last_high_water, "high water shrank");
                last_high_water = s.high_water;
                prop_assert!(s.high_water <= s.released as usize);
            }
            let s = pool.stats();
            // Conservation: every acquired buffer is either still out or idle
            // in the free list (released buffers may have been re-acquired).
            prop_assert_eq!(
                s.fresh as usize,
                outstanding.len() + pool.idle(),
                "buffers invented or lost"
            );
            // The obs alloc-note hook saw exactly the fresh allocations.
            prop_assert_eq!(
                crate::alloc::current().wrapping_sub(allocs_before),
                s.fresh,
                "alloc::note diff disagrees with PoolStats.fresh"
            );
        }
    }
}
