//! Work-stealing job pool for independent trials.
//!
//! Experiments (single-session trial sweeps and fleet sweeps alike) run
//! many independent, deterministic jobs whose results must come back in
//! index order so downstream aggregation stays bit-identical regardless
//! of scheduling. Workers pull indices from a shared atomic counter —
//! long jobs never leave a fixed chunk of stragglers behind — and each
//! result lands in its own pre-allocated slot.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers to use for `n` jobs on this machine: the available
/// parallelism, capped at the job count (and at least 1).
pub fn default_workers(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .clamp(1, n.max(1))
}

/// Run `job(0..n)` across `workers` threads, returning results in index
/// order. Jobs are claimed one at a time from a shared counter (work
/// stealing), so heterogeneous job durations still load-balance.
pub fn run_indexed<T, F>(n: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    {
        let slot_refs: Vec<Mutex<&mut Option<T>>> = slots.iter_mut().map(Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = job(i);
                    let mut slot = slot_refs[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    **slot = Some(result);
                });
            }
        });
    }
    slots
        .into_iter()
        // lint: allow(panic) scoped threads joined above; every slot was written
        .map(|s| s.expect("pool job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_indexed(100, 8, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_matches_serial() {
        let serial: Vec<usize> = (0..17).map(|i| i * i).collect();
        assert_eq!(run_indexed(17, 1, |i| i * i), serial);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_indexed(64, 6, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn default_workers_is_bounded_by_jobs() {
        assert_eq!(default_workers(1), 1);
        assert!(default_workers(1024) >= 1);
    }
}
